//! Determinism pins for the self-healing sweep (`repro selfheal`).
//!
//! Four guarantees from EXPERIMENTS.md are enforced here:
//!
//! 1. The figure is thread-count-invariant: online learning happens
//!    inside each cell's own simulator with all randomness drawn from
//!    counter-based streams seeded per cell, so the rendered table is
//!    byte-identical for any `--threads`.
//! 2. A neutered online policy (lr = 0, ε = 0) wrapped around a frozen
//!    network is *exactly* the frozen baseline: same decisions, same
//!    statistics, bit-for-bit, over a full fault-free simulation.
//! 3. A checkpoint-split online run — learner replay ring, buffer
//!    controller, and fault runtime all mid-flight — is bit-identical
//!    to the unsplit run.
//! 4. The warm result-cache ladder holds: a second `selfheal` run
//!    answers every cell from the cache with zero simulated cycles and
//!    zero training epochs.

use std::path::PathBuf;
use std::sync::Mutex;

use bench::exp::backend::CellRecord;
use bench::exp::cache::{CacheStats, ResultCache};
use bench::exp::driver::{resolve, run_matrix, run_matrix_cached};
use bench::exp::figures::FigureKind;
use bench::exp::spec::{ExperimentSpec, Tier, TierParams};
use bench::CliArgs;
use nn_mlp::Mlp;
use noc_sim::{
    FaultPlan, Pattern, SimCheckpoint, SimConfig, Simulator, SyntheticTraffic, Topology,
};
use rl_arb::{
    training_epochs, AgentConfig, FeatureSet, NnPolicyArbiter, OnlinePolicy, RlVcController,
    StateEncoder,
};

/// The simulator cycle counter is process-wide; tests measuring deltas
/// against it must not overlap.
static SIM_COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-selfheal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn args(seed: u64, threads: usize, tag: &str) -> CliArgs {
    CliArgs {
        quick: true,
        seed,
        threads,
        out_dir: PathBuf::from("results"),
        artifacts_dir: temp_dir(&format!("{tag}-artifacts")),
        ..CliArgs::default()
    }
}

/// The selfheal spec with `driver_equivalence`-convention scaled budgets
/// so the repeated full-matrix runs stay suite-friendly.
fn scaled_selfheal() -> (ExperimentSpec, TierParams, bench::exp::figures::Renderer) {
    let FigureKind::Matrix { spec, render, .. } = &resolve("selfheal").unwrap().kind else {
        panic!("selfheal must be a matrix figure")
    };
    let spec = spec();
    let params = TierParams {
        warmup: 200,
        measure: 800,
        nn_epochs: 2,
        nn_epoch_cycles: 250,
        ..*spec.params(Tier::Quick)
    };
    (spec, params, *render)
}

/// A shared frozen network + encoder pair for the sim-level tests.
fn frozen_parts(seed: u64) -> (Mlp, StateEncoder, AgentConfig) {
    let cfg = SimConfig::synthetic(4, 4);
    let encoder = StateEncoder::new(5, cfg.num_vnets, FeatureSet::synthetic(), cfg.feature_bounds);
    let agent_cfg = AgentConfig::tuned_synthetic(seed);
    let net = Mlp::paper_agent(encoder.state_width(), agent_cfg.hidden, encoder.num_slots(), seed);
    (net, encoder, agent_cfg)
}

fn mesh_sim(seed: u64, arbiter: Box<dyn noc_sim::Arbiter>) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.15, cfg.num_vnets, seed);
    Simulator::new(topo, cfg, arbiter, traffic).unwrap()
}

/// `repro selfheal --seed 1` renders byte-identical tables (and identical
/// structured cells) on 1 and 4 worker threads: online learning and the
/// buffer controller add no thread-count-dependent state.
#[test]
fn selfheal_is_thread_invariant() {
    rl_arb::set_quiet(true);
    let (spec, params, render) = scaled_selfheal();
    let seeds = spec.seed_list(1, Tier::Quick);

    let run = |threads: usize| {
        let data = run_matrix(&spec, &params, &seeds, &args(1, threads, "threads"));
        let rendered = render(&spec, &params, &data);
        (rendered.text, rendered.table, data.all_cells())
    };
    let serial = run(1);
    let parallel = run(4);

    assert_eq!(serial.0, parallel.0, "rendered text diverged across thread counts");
    assert_eq!(serial.1, parallel.1, "record table diverged across thread counts");
    assert_eq!(serial.2, parallel.2, "structured cells diverged across thread counts");
    // Sanity: the sweep exercised faults and emitted the recovery metrics.
    assert!(
        serial.2.iter().any(|c| c.fault_plan.is_some()),
        "no cell carries a fault plan hash — the intensity axis did not engage"
    );
    for metric in ["fault_onsets", "recoveries", "recovery_time", "post_fault_latency"] {
        assert!(
            serial.2.iter().all(|c| c.metrics.iter().any(|(k, _)| k == metric)),
            "cells are missing the {metric} metric"
        );
    }
}

/// An online policy with learning neutered (lr = 0, ε = 0) wrapped around
/// a frozen network reproduces the frozen `NnPolicyArbiter` (ε = 0)
/// bit-for-bit over a fault-free run: the wrapper's replay bookkeeping
/// must be a pure observer of the decision stream.
#[test]
fn neutered_online_policy_matches_frozen_baseline() {
    let (net, encoder, agent_cfg) = frozen_parts(7);

    let frozen = NnPolicyArbiter::new(net.clone(), encoder.clone()).with_epsilon(0.0);
    let mut sim = mesh_sim(7, Box::new(frozen));
    sim.run(2_000);
    let frozen_stats = format!("{:?}", sim.stats());

    let neutered = AgentConfig { lr: 0.0, epsilon: 0.0, ..agent_cfg };
    let online = OnlinePolicy::new(net, encoder, neutered);
    let mut sim = mesh_sim(7, Box::new(online));
    sim.run(2_000);
    let online_stats = format!("{:?}", sim.stats());

    assert_eq!(
        frozen_stats, online_stats,
        "a zero-lr, zero-epsilon online policy diverged from the frozen baseline"
    );
}

/// A run with *everything* learning — online DQN arbiter mid-training,
/// RL buffer controller mid-exploration, fault runtime mid-episode — can
/// be checkpointed at an arbitrary cycle and resumed bit-identically:
/// same statistics and the same final checkpoint content hash as the
/// unsplit run.
#[test]
fn online_learning_run_splits_bit_identically() {
    let (horizon, split) = (1_200u64, 700u64);
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let plan = FaultPlan::generate(0xFA11, 1.0, &topo, horizon);
    let make_arb = || {
        let (net, encoder, agent_cfg) = frozen_parts(21);
        Box::new(OnlinePolicy::new(net, encoder, agent_cfg))
    };
    let make_ctl = || Box::new(RlVcController::paper_default(21));

    let mut sim = mesh_sim(21, make_arb());
    sim.set_buffer_controller(make_ctl());
    sim.set_fault_plan(&plan);
    sim.run(split);
    // Survive a "process restart": only the serialized text carries over.
    let text = sim.checkpoint().unwrap().to_json().to_string();
    drop(sim);

    let ck = SimCheckpoint::from_json(&text).unwrap();
    let mut sim = mesh_sim(21, make_arb());
    sim.set_buffer_controller(make_ctl());
    sim.restore_checkpoint(&ck).unwrap();
    assert_eq!(sim.cycle(), split);
    sim.run(horizon - split);
    let split_out = (format!("{:?}", sim.stats()), sim.checkpoint().unwrap().content_hash());

    let mut sim = mesh_sim(21, make_arb());
    sim.set_buffer_controller(make_ctl());
    sim.set_fault_plan(&plan);
    sim.run(horizon);
    let straight = (format!("{:?}", sim.stats()), sim.checkpoint().unwrap().content_hash());

    assert_eq!(split_out, straight, "split online run diverged from the unsplit run");
}

/// Cells must match bit-for-bit once the hit/miss provenance stamp is
/// ignored.
fn strip_cache(cells: &[CellRecord]) -> Vec<CellRecord> {
    cells
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.cache = None;
            c
        })
        .collect()
}

/// The warm-cache ladder for selfheal: the second run answers every cell
/// from the result cache — zero simulated cycles, zero training epochs —
/// and renders identically to the cold run.
#[test]
fn warm_cache_selfheal_simulates_zero_cycles() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rl_arb::set_quiet(true);
    let (spec, params, render) = scaled_selfheal();
    let seeds = [42u64];
    let a = args(42, 2, "cache");
    let cache = ResultCache::new(temp_dir("cache"));

    let mut cold_stats = CacheStats::default();
    let cold = run_matrix_cached(&spec, &params, &seeds, &a, &cache, &mut cold_stats);
    assert_eq!(cold_stats.hits, 0, "empty cache cannot hit");
    assert_eq!(cold_stats.misses, cold_stats.cells, "cold run misses every cell");

    let sim_before = noc_sim::simulated_cycles();
    let train_before = training_epochs();
    let mut warm_stats = CacheStats::default();
    let warm = run_matrix_cached(&spec, &params, &seeds, &a, &cache, &mut warm_stats);
    assert_eq!(
        noc_sim::simulated_cycles() - sim_before,
        0,
        "a fully warm cache must simulate zero cycles (and hence run zero online updates)"
    );
    assert_eq!(
        training_epochs() - train_before,
        0,
        "a fully warm cache must train zero artifact epochs"
    );
    assert_eq!(warm_stats.hits, warm_stats.cells, "warm run hits every cell");
    assert_eq!(warm_stats.misses, 0);

    assert_eq!(
        strip_cache(&cold.all_cells()),
        strip_cache(&warm.all_cells()),
        "warm cells diverged from the cold run"
    );
    let cold_r = render(&spec, &params, &cold);
    let warm_r = render(&spec, &params, &warm);
    assert_eq!(cold_r.text, warm_r.text, "warm text diverged");
    assert_eq!(cold_r.table, warm_r.table, "warm table diverged");
}
