//! Determinism pins for the fault-injection sweep.
//!
//! Two guarantees from EXPERIMENTS.md are enforced here:
//!
//! 1. `repro resilience` is thread-count-invariant: fault plans are
//!    generated once per (scenario, intensity) row on the main thread,
//!    so the rendered table is byte-identical for any `--threads`.
//! 2. An all-zero fault axis is *exactly* the fault-free path: running
//!    fig05 with `intensities: [0.0]` reproduces the plain fig05 output
//!    bit-for-bit (the fault machinery never engages — no plan is even
//!    allocated).

use std::path::PathBuf;

use bench::exp::driver::{resolve, run_matrix};
use bench::exp::figures::FigureKind;
use bench::exp::spec::{ExperimentSpec, FaultAxis, Tier, TierParams};
use bench::CliArgs;

fn args(seed: u64, threads: usize) -> CliArgs {
    CliArgs {
        quick: true,
        seed,
        threads,
        out_dir: PathBuf::from("results"),
        // A per-process store keeps these runs independent of whatever
        // `results/artifacts/` holds (and of other test binaries).
        artifacts_dir: std::env::temp_dir()
            .join(format!("bench-resilience-artifacts-{}", std::process::id())),
        ..CliArgs::default()
    }
}

fn matrix_figure(name: &str) -> (ExperimentSpec, bench::exp::figures::Renderer) {
    let FigureKind::Matrix { spec, render, .. } = &resolve(name).unwrap().kind else {
        panic!("{name} must be a matrix figure")
    };
    (spec(), *render)
}

/// `repro resilience --quick --seed 1` renders byte-identical tables (and
/// identical structured cells) on 1 and 4 worker threads.
#[test]
fn resilience_quick_is_thread_invariant() {
    rl_arb::set_quiet(true);
    let (spec, render) = matrix_figure("resilience");
    let params = *spec.params(Tier::Quick);
    let seeds = spec.seed_list(1, Tier::Quick);

    let run = |threads: usize| {
        let data = run_matrix(&spec, &params, &seeds, &args(1, threads));
        let rendered = render(&spec, &params, &data);
        (rendered.text, rendered.table, data.all_cells())
    };
    let serial = run(1);
    let parallel = run(4);

    assert_eq!(serial.0, parallel.0, "rendered text diverged across thread counts");
    assert_eq!(serial.1, parallel.1, "record table diverged across thread counts");
    assert_eq!(serial.2, parallel.2, "structured cells diverged across thread counts");
    // Sanity: the sweep actually injected faults somewhere.
    assert!(
        serial.2.iter().any(|c| c.fault_plan.is_some()),
        "no cell carries a fault plan hash — the intensity axis did not engage"
    );
}

/// An `intensities: [0.0]` fault axis on fig05 `--quick` is bit-identical
/// to plain fig05: no plan is generated, labels are unchanged, and the
/// rendered output matches byte-for-byte.
#[test]
fn zero_fault_axis_reproduces_fig05_exactly() {
    rl_arb::set_quiet(true);
    let (spec, render) = matrix_figure("fig05");
    // ~10× scaled-down quick budgets (the `driver_equivalence.rs`
    // convention) so the double NN-training run stays suite-friendly.
    let params = TierParams {
        warmup: 200,
        measure: 800,
        nn_epochs: 2,
        nn_epoch_cycles: 250,
        ..*spec.params(Tier::Quick)
    };
    let seeds = spec.seed_list(42, Tier::Quick);
    let a = args(42, 2);

    let plain = run_matrix(&spec, &params, &seeds, &a);
    let mut zero_spec = spec.clone();
    zero_spec.faults = Some(FaultAxis { intensities: vec![0.0], quiet_tail: 0.0, post_warmup: false });
    // Same artifact store: the second run resolves the NN warm, which the
    // store guarantees is bit-identical to the cold-trained policy.
    let zeroed = run_matrix(&zero_spec, &params, &seeds, &a);

    let plain_r = render(&spec, &params, &plain);
    let zeroed_r = render(&spec, &params, &zeroed);
    assert_eq!(plain_r.text, zeroed_r.text, "zero-fault axis changed fig05 output");
    assert_eq!(plain_r.table, zeroed_r.table);
    assert_eq!(plain.all_cells(), zeroed.all_cells());
    assert!(
        zeroed.all_cells().iter().all(|c| c.fault_plan.is_none()),
        "intensity 0.0 must not attach a fault plan"
    );
}
