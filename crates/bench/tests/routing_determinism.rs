//! Determinism pins for the routing x topology sweep.
//!
//! `repro routing` exercises every topology family (mesh, torus, ring,
//! degraded mesh) under a compatible deterministic routing kind, with a
//! fault axis on top. The guarantee enforced here mirrors the resilience
//! figure's: fault plans are generated once per (scenario, intensity)
//! row on the main thread, so the rendered table is byte-identical for
//! any `--threads` value.

use std::path::PathBuf;

use bench::exp::driver::{resolve, run_matrix};
use bench::exp::figures::FigureKind;
use bench::exp::spec::{ExperimentSpec, Tier};
use bench::CliArgs;

fn args(seed: u64, threads: usize) -> CliArgs {
    CliArgs {
        quick: true,
        seed,
        threads,
        out_dir: PathBuf::from("results"),
        // A per-process store keeps these runs independent of whatever
        // `results/artifacts/` holds (and of other test binaries).
        artifacts_dir: std::env::temp_dir()
            .join(format!("bench-routing-artifacts-{}", std::process::id())),
        ..CliArgs::default()
    }
}

fn matrix_figure(name: &str) -> (ExperimentSpec, bench::exp::figures::Renderer) {
    let FigureKind::Matrix { spec, render, .. } = &resolve(name).unwrap().kind else {
        panic!("{name} must be a matrix figure")
    };
    (spec(), *render)
}

/// `repro routing --quick --seed 1` renders byte-identical tables (and
/// identical structured cells) on 1 and 4 worker threads, and every
/// scenario row actually delivers traffic on its topology.
#[test]
fn routing_quick_is_thread_invariant() {
    rl_arb::set_quiet(true);
    let (spec, render) = matrix_figure("routing");
    let params = *spec.params(Tier::Quick);
    let seeds = spec.seed_list(1, Tier::Quick);

    let run = |threads: usize| {
        let data = run_matrix(&spec, &params, &seeds, &args(1, threads));
        let rendered = render(&spec, &params, &data);
        (rendered.text, rendered.table, data.all_cells())
    };
    let serial = run(1);
    let parallel = run(4);

    assert_eq!(serial.0, parallel.0, "rendered text diverged across thread counts");
    assert_eq!(serial.1, parallel.1, "record table diverged across thread counts");
    assert_eq!(serial.2, parallel.2, "structured cells diverged across thread counts");
    // Sanity: the fault axis engaged somewhere, and every cell (torus,
    // ring, and degraded rows included) moved packets.
    assert!(
        serial.2.iter().any(|c| c.fault_plan.is_some()),
        "no cell carries a fault plan hash — the intensity axis did not engage"
    );
    assert!(
        serial.2.iter().all(|c| c.metric("delivered") > 0.0),
        "a scenario row delivered no packets"
    );
}
