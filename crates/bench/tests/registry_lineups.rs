//! Registry round-trip tests: policy line-ups are data (names), so every
//! name the experiment layer can emit must parse back and construct.

use bench::exp::figures::{self, FigureKind};
use bench::exp::spec::LineupEntry;
use noc_arbiters::{make_arbiter, PolicyKind};

/// Every `PolicyKind` round-trips through its canonical name and
/// constructs a live arbiter via `make_arbiter`.
#[test]
fn every_policy_kind_round_trips_and_constructs() {
    for kind in PolicyKind::ALL {
        let name = kind.as_str();
        let parsed: PolicyKind = name.parse().unwrap_or_else(|e| {
            panic!("{name} does not parse back: {e}");
        });
        assert_eq!(parsed, kind, "{name} parsed to a different kind");
        let arbiter = make_arbiter(kind, 42);
        // The constructed arbiter is live, not a stub.
        let _ = arbiter;
        assert!(!kind.display_name().is_empty());
    }
}

/// Unknown names are rejected, not mapped to a default.
#[test]
fn unknown_policy_names_are_errors() {
    for bad in ["", "nn ", "global_age", "roundrobin", "no-such-policy"] {
        assert!(
            bad.parse::<PolicyKind>().is_err(),
            "'{bad}' should not parse as a policy"
        );
    }
}

/// Every line-up name in every registered figure spec — defaults and
/// per-scenario overrides — resolves, and the NN slot only appears in
/// specs that carry a recipe to fill it.
#[test]
fn every_figure_lineup_resolves() {
    for def in figures::all() {
        let FigureKind::Matrix { spec, .. } = &def.kind else {
            continue;
        };
        let spec = spec();
        let mut lineups = vec![&spec.lineup];
        for scenario in &spec.scenarios {
            if let bench::exp::spec::ScenarioSpec::Synthetic { lineup: Some(l), .. } = scenario {
                lineups.push(l);
            }
        }
        for lineup in lineups {
            assert!(!lineup.entries.is_empty(), "{}: empty line-up", def.name);
            for entry in &lineup.entries {
                // Canonical names round-trip through the parser.
                let name = entry.canonical_name();
                let reparsed = LineupEntry::parse(name)
                    .unwrap_or_else(|e| panic!("{}: '{name}' fails to parse: {e}", def.name));
                assert_eq!(&reparsed, entry, "{}: '{name}' round-trip mismatch", def.name);
                // Registry entries construct.
                if let LineupEntry::Policy(kind) = entry {
                    let _ = make_arbiter(*kind, 42);
                }
            }
            if lineup.has_nn_slot() {
                assert!(
                    spec.nn.is_some(),
                    "{}: NN slot in line-up but no NN recipe in spec",
                    def.name
                );
            }
        }
    }
}
