//! Design-space search determinism and replay contract
//! (`bench::exp::search`): the `SearchRecord` a run writes is
//! byte-identical regardless of `--threads`, a warm result cache answers
//! a repeated search with zero simulated cycles and zero training
//! epochs, a prior record resumes by memo replay without touching the
//! queue at all, and the greedy climb the search generalizes still
//! reproduces the paper's local-age + hop-count feature selection.
//!
//! Budgets follow the `result_cache` convention: quick tier, tiny
//! search budgets, so the repeated runs stay test-suite friendly.

use std::path::PathBuf;
use std::sync::Mutex;

use bench::exp::search::{run_search, SearchOutcome, SEARCH_SCHEMA_VERSION};
use bench::CliArgs;
use rl_arb::{hill_climb, training_epochs, Feature, TrainSpec};

/// The simulator cycle counter is process-wide; tests measuring deltas
/// against it must not overlap. (Poisoning is irrelevant — a panicking
/// holder already failed the suite.)
static SIM_COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-search-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Args for one isolated search run: every run gets its own out, cache
/// and artifact directories unless a test deliberately shares them.
fn args_for(tag: &str, driver: &str, budget: usize, threads: usize) -> CliArgs {
    let root = temp_dir(tag);
    CliArgs {
        quick: true,
        seed: 42,
        threads,
        driver: driver.into(),
        budget,
        out_dir: root.join("out"),
        cache_dir: root.join("cache"),
        artifacts_dir: root.join("artifacts"),
        ..CliArgs::default()
    }
}

fn run(args: &CliArgs) -> SearchOutcome {
    run_search(args).expect("search run failed")
}

/// (a) The record and the Pareto CSV are pure functions of
/// `(driver, seed, budget, tier)` — worker-thread count must not leak
/// into a single byte. `hc` covers the deterministic neighbor walk,
/// `evo` covers the RNG-driven init/mutation path.
#[test]
fn same_seed_and_budget_is_byte_identical_across_threads() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for driver in ["hc", "evo"] {
        let narrow = run(&args_for(&format!("t1-{driver}"), driver, 6, 1));
        let wide = run(&args_for(&format!("t4-{driver}"), driver, 6, 4));
        let narrow_record = std::fs::read(&narrow.record_path).unwrap();
        let wide_record = std::fs::read(&wide.record_path).unwrap();
        assert_eq!(
            narrow_record, wide_record,
            "{driver}: SearchRecord diverged between --threads 1 and --threads 4"
        );
        let narrow_csv = std::fs::read(&narrow.csv_path).unwrap();
        let wide_csv = std::fs::read(&wide.csv_path).unwrap();
        assert_eq!(narrow_csv, wide_csv, "{driver}: Pareto CSV diverged across threads");
        assert_eq!(narrow.record.schema_version, SEARCH_SCHEMA_VERSION);
        assert_eq!(narrow.record.points.len(), 6, "{driver}: budget must be spent exactly");
        assert!(!narrow.record.pareto.is_empty(), "{driver}: front cannot be empty");
    }
}

/// (b) Cold → warm → resume ladder over shared directories. The warm run
/// (record deleted, cache kept) re-proposes the identical trace and
/// answers every cell from the result cache: zero simulated cycles, zero
/// training epochs, `misses == 0`. The resume run (record kept) never
/// reaches the queue: every point is a memo replay and the cache stats
/// stay all-zero.
#[test]
fn warm_cache_and_record_replay_do_zero_work() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let args = args_for("warm", "hc", 6, 2);

    let cold = run(&args);
    assert_eq!(cold.stats.misses, cold.stats.cells, "cold run misses every cell");
    assert!(cold.stats.cells > 0, "cold run must evaluate through the queue");
    assert_eq!(cold.memo_replays, 0);
    let cold_record = std::fs::read(&cold.record_path).unwrap();

    // Warm: drop the record so the search re-proposes from scratch, but
    // keep the populated result cache.
    std::fs::remove_file(&cold.record_path).unwrap();
    let sim_before = noc_sim::simulated_cycles();
    let train_before = training_epochs();
    let warm = run(&args);
    assert_eq!(
        noc_sim::simulated_cycles() - sim_before,
        0,
        "a fully warm cache must simulate zero cycles"
    );
    assert_eq!(
        training_epochs() - train_before,
        0,
        "a fully warm cache must train zero epochs"
    );
    assert_eq!(warm.stats.misses, 0, "warm run answers entirely from the cache");
    assert_eq!(warm.stats.hits, warm.stats.cells);
    assert_eq!(warm.stats.simulated_cycles, 0);
    assert_eq!(warm.memo_replays, 0, "with no record there is nothing to replay");
    // Objectives identical to the cold run; only the cache stamps flip
    // "miss" → "hit".
    assert_eq!(warm.record.pareto, cold.record.pareto);
    for (w, c) in warm.record.points.iter().zip(&cold.record.points) {
        assert_eq!(w.spec_hash, c.spec_hash);
        assert_eq!(w.score, c.score);
        assert_eq!(c.cache, "miss");
        assert_eq!(w.cache, "hit");
    }

    // Resume: the record is on disk, so every recorded point answers
    // from the memo and the queue is never consulted.
    let sim_before = noc_sim::simulated_cycles();
    let resumed = run(&args);
    assert_eq!(noc_sim::simulated_cycles() - sim_before, 0);
    assert_eq!(resumed.memo_replays, 6, "every point replays from the record");
    assert_eq!(resumed.stats.cells, 0, "replay never reaches the queue");
    assert!(
        resumed.record.points.iter().all(|p| p.cache == "memo"),
        "replayed points carry memo provenance"
    );
    assert_eq!(resumed.record.pareto, cold.record.pareto);

    // A replayed record still round-trips to the same bytes modulo the
    // provenance stamps.
    let replay_record = std::fs::read(&resumed.record_path).unwrap();
    let normalize = |bytes: &[u8]| {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .replace("\"cache\": \"miss\"", "\"cache\": \"~\"")
            .replace("\"cache\": \"memo\"", "\"cache\": \"~\"")
    };
    assert_eq!(normalize(&replay_record), normalize(&cold_record));
}

/// (c) The greedy climb the search drivers generalize
/// (`rl_arb::greedy_climb`) still reproduces the paper's §6.5 outcome in
/// its feature-selection form: starting from single features and adding
/// greedily, the procedure lands on **local age + hop count** — the pair
/// the paper reports — using the fig13 quick-tier fixture.
#[test]
fn hill_climb_reproduces_paper_feature_selection() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut spec = TrainSpec::tuned_synthetic(4, 0.40, 5);
    spec.curriculum = Vec::new();
    spec.epochs = 4;
    spec.cycles_per_epoch = 600;
    let result = hill_climb(
        &spec,
        &[Feature::PayloadSize, Feature::LocalAge, Feature::Distance, Feature::HopCount],
        0.02,
    );
    assert_eq!(
        result.selected,
        vec![Feature::LocalAge, Feature::HopCount],
        "greedy climb must adopt local age first, then hop count (§6.5)"
    );
    assert!(result.latency.is_finite());
    // Round 1 explores all four features alone; at least one more round
    // ran to adopt the second feature.
    assert!(result.history.len() > 4);
}
