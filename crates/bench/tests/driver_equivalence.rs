//! The unified `repro` driver must reproduce the legacy per-figure
//! binaries exactly: same text, same numbers, for any worker count.
//!
//! Budgets are the `--quick` shapes scaled down ~10× (the same convention
//! as `tests/determinism.rs`) so the double runs stay test-suite friendly;
//! the sweep *structure* — scenario order, line-up order, seed order, NN
//! training calls — is exactly the binaries'.

use std::path::PathBuf;

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::exp::driver::run_matrix;
use bench::exp::figures::{self, FigureKind};
use bench::exp::spec::{ExperimentSpec, Lineup, ScenarioSpec, TierParams};
use bench::{apu_sweep_seeds, CliArgs, Fig05Params};

fn args(threads: usize) -> CliArgs {
    CliArgs {
        quick: true,
        seed: 42,
        threads,
        out_dir: PathBuf::from("results"),
        // A per-process store keeps these runs independent of whatever
        // `results/artifacts/` holds (and of other test binaries).
        artifacts_dir: std::env::temp_dir()
            .join(format!("bench-driver-eq-artifacts-{}", std::process::id())),
        ..CliArgs::default()
    }
}

/// The fig05 matrix spec from the registry, with its quick budgets
/// shrunk ~10×.
fn scaled_fig05() -> (ExperimentSpec, TierParams) {
    let FigureKind::Matrix { spec, .. } = &figures::find("fig05").unwrap().kind else {
        panic!("fig05 must be a matrix figure")
    };
    let spec = spec();
    let params = TierParams {
        warmup: 200,
        measure: 800,
        nn_epochs: 2,
        nn_epoch_cycles: 250,
        ..spec.quick
    };
    (spec, params)
}

/// Driver text output for fig05 is byte-identical to the pre-refactor
/// `fig05_synthetic` binary (whose report core, `bench::fig05_report`,
/// is retained as the legacy reference).
#[test]
fn fig05_driver_text_matches_legacy_binary() {
    let (spec, params) = scaled_fig05();
    let FigureKind::Matrix { render, .. } = &figures::find("fig05").unwrap().kind else {
        unreachable!()
    };
    let data = run_matrix(&spec, &params, &[42], &args(1));
    let driver_text = render(&spec, &params, &data).text;

    let legacy = Fig05Params {
        warmup: params.warmup,
        measure: params.measure,
        epochs: params.nn_epochs,
        epoch_cycles: params.nn_epoch_cycles,
        seed: 42,
        threads: 1,
    };
    let legacy_text = format!(
        "== Fig. 5: message latency, uniform random (normalized to Global-age) ==\n\n{}",
        bench::fig05_report(&legacy)
    );
    assert_eq!(driver_text, legacy_text, "driver fig05 text diverged from the legacy binary");
}

/// The driver's seed-mean accumulation on the fig09 path reproduces the
/// legacy `apu_sweep_seeds` numbers bit-for-bit (same policy order, same
/// increasing-seed summation), for serial and parallel dispatch.
#[test]
fn fig09_driver_means_match_legacy_sweep_bitwise() {
    let FigureKind::Matrix { spec, .. } = &figures::find("fig09").unwrap().kind else {
        panic!("fig09 must be a matrix figure")
    };
    let mut spec = spec();
    // Tiny-budget shape: one workload, the six untrained policies.
    spec.scenarios = vec![ScenarioSpec::ApuWorkload { benchmark: "bfs".into() }];
    spec.lineup = Lineup::parse(&[
        "round-robin",
        "islip",
        "fifo",
        "probdist",
        "rl-apu",
        "global-age",
    ]);
    spec.nn = None;
    let params = TierParams { max_cycles: 300_000, apu_scale: 0.02, ..spec.quick };
    let seeds = [42u64, 43];

    let specs = vec![Benchmark::Bfs.spec_scaled(params.apu_scale); NUM_QUADRANTS];
    let legacy = apu_sweep_seeds(&specs, &seeds, params.max_cycles, None, 1);
    assert_eq!(legacy.len(), spec.lineup.entries.len());

    for threads in [1, 8] {
        let data = run_matrix(&spec, &params, &seeds, &args(threads));
        let sc = &data.scenarios[0];
        let avgs = sc.means("avg_exec");
        let tails = sc.means("tail_exec");
        for (p, (name, legacy_avg, legacy_tail)) in legacy.iter().enumerate() {
            assert_eq!(
                avgs[p].to_bits(),
                legacy_avg.to_bits(),
                "{name} (threads {threads}): avg-exec mean diverged from legacy sweep"
            );
            assert_eq!(
                tails[p].to_bits(),
                legacy_tail.to_bits(),
                "{name} (threads {threads}): tail-exec mean diverged from legacy sweep"
            );
        }
    }
}

/// Worker count is invisible through the driver: the full cell set of a
/// matrix run is identical for 1 and 8 threads.
#[test]
fn driver_cells_identical_across_thread_counts() {
    let (spec, params) = scaled_fig05();
    let serial = run_matrix(&spec, &params, &[42], &args(1));
    let parallel = run_matrix(&spec, &params, &[42], &args(8));
    assert_eq!(serial.all_cells(), parallel.all_cells(), "thread count changed driver cells");
}
