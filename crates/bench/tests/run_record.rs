//! `RunRecord` JSON schema tests: the serialized form is a versioned
//! interface, pinned by a checked-in golden file.
//!
//! To regenerate the golden after an intentional schema bump:
//! `BLESS=1 cargo test -p bench --test run_record`.
//!
//! The previous schemas' goldens (`run_record_v1.json`,
//! `run_record_v2.json`) are kept as frozen compatibility fixtures: the
//! current reader must keep parsing them.

use bench::exp::backend::CellRecord;
use bench::exp::record::{RunRecord, Table, RUN_RECORD_SCHEMA_VERSION};

fn sample_record() -> RunRecord {
    RunRecord {
        schema_version: RUN_RECORD_SCHEMA_VERSION,
        figure: "fig09".into(),
        title: "Fig. 9: normalized average execution time (global-age = 1.0)".into(),
        tier: "quick".into(),
        backend: "apu".into(),
        base_seed: 42,
        seeds: vec![42, 43],
        threads: 2,
        git_describe: "v0-test".into(),
        spec_hash: "00ff00ff00ff00ff".into(),
        normalization: Some("global-age".into()),
        cells: vec![
            // A cached cell (v3): carries its content hash and provenance.
            CellRecord {
                scenario: "bfs".into(),
                policy: "round-robin".into(),
                seed: 42,
                artifact: None,
                fault_plan: None,
                cell_hash: Some("1234567890abcdef".into()),
                cache: Some("hit".into()),
                metrics: vec![
                    ("avg_exec".into(), 123456.75),
                    ("tail_exec".into(), 130000.0),
                ],
            },
            CellRecord {
                scenario: "bfs".into(),
                policy: "global-age".into(),
                seed: 43,
                // A metric with an exotic value and a name needing escapes.
                metrics: vec![("avg \"exec\"\n".into(), 0.1)],
                artifact: None,
                fault_plan: None,
                cell_hash: Some("fedcba0987654321".into()),
                cache: Some("miss".into()),
            },
            // An NN cell carrying its trained artifact's recipe hash,
            // run cache-free: no cell_hash/cache keys at all.
            CellRecord {
                scenario: "bfs".into(),
                policy: "nn".into(),
                seed: 42,
                artifact: Some("a1b2c3d4e5f60718".into()),
                fault_plan: None,
                cell_hash: None,
                cache: None,
                metrics: vec![("avg_exec".into(), 119000.5)],
            },
            // A fault-injected cell (v2): carries its fault plan's hash.
            CellRecord {
                scenario: "bfs@f0.50".into(),
                policy: "round-robin".into(),
                seed: 42,
                artifact: None,
                fault_plan: Some("0f1e2d3c4b5a6978".into()),
                cell_hash: None,
                cache: None,
                metrics: vec![("avg_exec".into(), 131072.25)],
            },
        ],
        table: Table {
            headers: vec!["workload".into(), "Round-robin".into()],
            rows: vec![vec!["bfs".into(), "1.023".into()]],
        },
    }
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_record_v3.json"
);

const GOLDEN_V1_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_record_v1.json"
);

const GOLDEN_V2_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_record_v2.json"
);

/// The serialized form matches the checked-in golden byte-for-byte, and
/// the golden parses back to the identical record.
#[test]
fn run_record_matches_golden_schema() {
    let record = sample_record();
    let json = record.to_json();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("bless golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "RunRecord JSON no longer matches the v{RUN_RECORD_SCHEMA_VERSION} golden; \
         if the schema change is intentional, bump RUN_RECORD_SCHEMA_VERSION and re-bless"
    );
    let parsed = RunRecord::from_json(&golden).expect("golden parses");
    assert_eq!(parsed, record, "golden does not round-trip");
}

/// Round-trip stability: serialize → parse → serialize is a fixpoint.
#[test]
fn run_record_serialization_is_a_fixpoint() {
    let record = sample_record();
    let once = record.to_json();
    let twice = RunRecord::from_json(&once).unwrap().to_json();
    assert_eq!(once, twice);
}

/// The schema version field gates parsing-compatible evolution: records
/// always carry it, and it survives the trip.
#[test]
fn schema_version_is_stamped_and_preserved() {
    let json = sample_record().to_json();
    assert!(json.starts_with("{\n  \"schema_version\": 3,"));
    let parsed = RunRecord::from_json(&json).unwrap();
    assert_eq!(parsed.schema_version, RUN_RECORD_SCHEMA_VERSION);
}

/// v1 documents (no `fault_plan` keys anywhere) must keep parsing under
/// the current reader — the compatibility guarantee EXPERIMENTS.md
/// documents. The v1 golden is frozen; it is never re-blessed.
#[test]
fn v1_documents_still_parse() {
    let golden = std::fs::read_to_string(GOLDEN_V1_PATH).expect("frozen v1 golden missing");
    let parsed = RunRecord::from_json(&golden).expect("v1 golden parses under the current reader");
    assert_eq!(parsed.schema_version, 1, "fixture must stay a v1 document");
    assert!(
        parsed.cells.iter().all(|c| c.fault_plan.is_none()),
        "v1 cells parse with fault_plan = None"
    );
    // Everything else survives as under the v1 reader.
    assert_eq!(parsed.figure, "fig09");
    assert_eq!(parsed.cells.len(), 3);
    assert_eq!(parsed.cells[2].artifact.as_deref(), Some("a1b2c3d4e5f60718"));
    // A v1 document re-serializes without inventing fault_plan keys.
    assert!(!parsed.to_json().contains("fault_plan"));
}

/// v2 documents (fault plans, but no cache provenance keys) must keep
/// parsing under the v3 reader. The v2 golden is frozen; it is never
/// re-blessed.
#[test]
fn v2_documents_still_parse() {
    let golden = std::fs::read_to_string(GOLDEN_V2_PATH).expect("frozen v2 golden missing");
    let parsed = RunRecord::from_json(&golden).expect("v2 golden parses under the v3 reader");
    assert_eq!(parsed.schema_version, 2, "fixture must stay a v2 document");
    assert!(
        parsed
            .cells
            .iter()
            .all(|c| c.cell_hash.is_none() && c.cache.is_none()),
        "v2 cells parse with cell_hash = None and cache = None"
    );
    // Everything else survives as under the v2 reader.
    assert_eq!(parsed.figure, "fig09");
    assert_eq!(parsed.cells.len(), 4);
    assert_eq!(parsed.cells[3].fault_plan.as_deref(), Some("0f1e2d3c4b5a6978"));
    // A v2 document re-serializes without inventing cache keys.
    let rejson = parsed.to_json();
    assert!(!rejson.contains("cell_hash") && !rejson.contains("\"cache\""));
}
