//! Fuzz-style robustness tests for the `RunRecord` JSON reader.
//!
//! The reader ingests files written by older versions of the tool, by
//! other machines, and — in regression tooling — by hand. The contract
//! under byte-level damage is *structured failure*: every mutated or
//! truncated document either parses or returns an `Err`, and never
//! panics, loops, or aborts the process.

use proptest::prelude::*;

use bench::exp::record::RunRecord;
use noc_sim::SplitMix64;

/// The checked-in current-schema golden document.
const GOLDEN: &str = include_str!("golden/run_record_v2.json");

/// Applies `n` seeded single-byte mutations (printable ASCII, so the
/// result stays valid UTF-8 — the golden file is pure ASCII).
fn mutate(doc: &str, seed: u64, n: usize) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    let mut rng = SplitMix64::new(seed);
    for _ in 0..n {
        let pos = rng.next_bounded(bytes.len() as u64) as usize;
        bytes[pos] = 0x20 + rng.next_bounded(0x5f) as u8;
    }
    String::from_utf8(bytes).expect("ascii mutations keep ascii")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single- and multi-byte corruptions never panic the
    /// reader.
    #[test]
    fn mutated_documents_never_panic(seed in any::<u64>(), burst in any::<u32>()) {
        let n = 1 + (burst as usize % 8);
        let doc = mutate(GOLDEN, seed, n);
        // Ok (mutation hit insignificant whitespace / a value that still
        // validates) and Err are both acceptable; a panic fails the test.
        let _ = RunRecord::from_json(&doc);
    }

    /// Truncation at every prefix length yields a structured error, not
    /// a panic.
    #[test]
    fn truncated_documents_never_panic(cut in any::<u64>()) {
        let len = (cut % GOLDEN.len() as u64) as usize;
        let doc = &GOLDEN[..len];
        if len < GOLDEN.len() {
            prop_assert!(
                RunRecord::from_json(doc).is_err(),
                "a strict prefix of the golden record must not parse"
            );
        }
    }
}

/// The unmutated golden document still parses — the fuzz corpus is live.
#[test]
fn golden_document_parses() {
    let rec = RunRecord::from_json(GOLDEN).expect("golden record parses");
    assert!(!rec.cells.is_empty());
}
