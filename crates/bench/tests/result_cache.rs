//! Result-cache equivalence: a figure run against a warm
//! content-addressed result cache performs **zero** simulated cycles
//! (pinned by the process-wide simulator cycle counter) and zero
//! training steps, and still produces cells and rendered text identical
//! to the cold run that populated the cache — the only permitted
//! difference is the `cache` provenance field flipping `"miss"` →
//! `"hit"`. A corrupted cache entry silently degrades to a re-simulated
//! miss and is repaired in place.
//!
//! Budgets follow the `driver_equivalence` convention: quick shapes
//! shrunk (one scenario, small line-up, tiny budgets) so the repeated
//! runs stay test-suite friendly.

use std::path::PathBuf;
use std::sync::Mutex;

use bench::exp::backend::CellRecord;
use bench::exp::cache::{CacheStats, ResultCache};
use bench::exp::driver::run_matrix_cached;
use bench::exp::figures::{self, FigureKind};
use bench::exp::spec::{ExperimentSpec, Lineup, ScenarioSpec, TierParams};
use bench::CliArgs;
use rl_arb::training_epochs;

/// The simulator cycle counter is process-wide; tests measuring deltas
/// against it must not overlap. (Poisoning is irrelevant — a panicking
/// holder already failed the suite.)
static SIM_COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-result-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn args_for(tag: &str) -> CliArgs {
    CliArgs {
        quick: true,
        seed: 42,
        threads: 2,
        out_dir: PathBuf::from("results"),
        artifacts_dir: temp_dir(&format!("{tag}-artifacts")),
        ..CliArgs::default()
    }
}

/// Cells must match bit-for-bit once the hit/miss provenance stamp is
/// ignored.
fn strip_cache(cells: &[CellRecord]) -> Vec<CellRecord> {
    cells
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.cache = None;
            c
        })
        .collect()
}

fn scaled_fig05() -> (ExperimentSpec, TierParams) {
    let FigureKind::Matrix { spec, .. } = &figures::find("fig05").unwrap().kind else {
        panic!("fig05 must be a matrix figure")
    };
    let mut spec = spec();
    spec.scenarios.truncate(1); // the 4x4 mesh row
    spec.lineup = Lineup::parse(&["fifo", "nn", "global-age"]);
    let params = TierParams {
        warmup: 200,
        measure: 800,
        nn_epochs: 2,
        nn_epoch_cycles: 200,
        ..spec.quick
    };
    (spec, params)
}

fn scaled_routing() -> (ExperimentSpec, TierParams) {
    let FigureKind::Matrix { spec, .. } = &figures::find("routing").unwrap().kind else {
        panic!("routing must be a matrix figure")
    };
    let mut spec = spec();
    // Keep one mesh row and the degraded-mesh row (table routing around
    // missing links) so fault plans over distinct link sets stay covered.
    spec.scenarios.retain(|s| {
        let ScenarioSpec::Synthetic { label, .. } = s else { return false };
        label == "xy@mesh" || label == "table@degraded"
    });
    let params = TierParams { warmup: 100, measure: 600, ..spec.quick };
    (spec, params)
}

/// Runs the full cold/warm contract for one spec: cold populates the
/// cache (all misses), warm answers entirely from it with zero simulated
/// cycles, and both produce identical cells modulo the provenance stamp.
fn assert_cold_warm_contract(
    spec: &ExperimentSpec,
    params: &TierParams,
    seeds: &[u64],
    args: &CliArgs,
    cache_dir: &PathBuf,
) {
    let FigureKind::Matrix { render, .. } = &figures::find(&spec.figure).unwrap().kind else {
        panic!("matrix figure")
    };
    let cache = ResultCache::new(cache_dir);

    let mut cold_stats = CacheStats::default();
    let cold = run_matrix_cached(spec, params, seeds, args, &cache, &mut cold_stats);
    assert_eq!(cold_stats.hits, 0, "empty cache cannot hit");
    assert_eq!(cold_stats.misses, cold_stats.cells, "cold run misses every cell");
    assert!(
        cold.all_cells().iter().all(|c| {
            c.cache.as_deref() == Some("miss") && c.cell_hash.is_some()
        }),
        "cold cells carry miss provenance and a content hash"
    );

    let sim_before = noc_sim::simulated_cycles();
    let train_before = training_epochs();
    let mut warm_stats = CacheStats::default();
    let warm = run_matrix_cached(spec, params, seeds, args, &cache, &mut warm_stats);
    assert_eq!(
        noc_sim::simulated_cycles() - sim_before,
        0,
        "a fully warm cache must simulate zero cycles"
    );
    assert_eq!(
        training_epochs() - train_before,
        0,
        "a fully warm cache must train zero epochs"
    );
    assert_eq!(warm_stats.hits, warm_stats.cells, "warm run hits every cell");
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.cells, cold_stats.cells);
    assert!(
        warm.all_cells().iter().all(|c| c.cache.as_deref() == Some("hit")),
        "warm cells carry hit provenance"
    );

    assert_eq!(
        strip_cache(&cold.all_cells()),
        strip_cache(&warm.all_cells()),
        "warm cells diverged from the cold run"
    );
    let cold_rendered = render(spec, params, &cold);
    let warm_rendered = render(spec, params, &warm);
    assert_eq!(cold_rendered.text, warm_rendered.text, "warm text diverged");
    assert_eq!(cold_rendered.table, warm_rendered.table, "warm table diverged");
}

#[test]
fn warm_cache_fig05_simulates_zero_cycles_and_matches_cold_run() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (spec, params) = scaled_fig05();
    let args = args_for("fig05");
    let cache_dir = temp_dir("fig05");
    assert_cold_warm_contract(&spec, &params, &[42, 43], &args, &cache_dir);
}

#[test]
fn warm_cache_routing_with_faults_simulates_zero_cycles_and_matches_cold_run() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (spec, params) = scaled_routing();
    let args = args_for("routing");
    let cache_dir = temp_dir("routing");
    assert_cold_warm_contract(&spec, &params, &[42], &args, &cache_dir);
}

/// A corrupted entry is indistinguishable from a missing one: the cell
/// silently re-simulates (a `"miss"`, same value), the rest of the
/// matrix still answers from the cache, and the store step repairs the
/// damaged file so the next run is fully warm again.
#[test]
fn corrupt_cache_entry_falls_back_to_simulation_and_is_repaired() {
    let _guard = SIM_COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (spec, params) = scaled_routing();
    let args = args_for("corrupt");
    let cache = ResultCache::new(temp_dir("corrupt"));
    let seeds = [42u64];

    let mut stats = CacheStats::default();
    let cold = run_matrix_cached(&spec, &params, &seeds, &args, &cache, &mut stats);
    let cold_cells = cold.all_cells();
    let victim = cold_cells[0].cell_hash.clone().expect("cached cells carry a hash");
    std::fs::write(cache.path_for(&victim), "{\"cache_schema_version\": garbage").unwrap();

    let mut stats = CacheStats::default();
    let retry = run_matrix_cached(&spec, &params, &seeds, &args, &cache, &mut stats);
    assert_eq!(stats.misses, 1, "only the corrupted cell re-simulates");
    assert_eq!(stats.hits, stats.cells - 1);
    let retry_cells = retry.all_cells();
    assert_eq!(
        retry_cells
            .iter()
            .filter(|c| c.cache.as_deref() == Some("miss"))
            .count(),
        1
    );
    assert_eq!(
        strip_cache(&cold_cells),
        strip_cache(&retry_cells),
        "re-simulated cell diverged from the cold run"
    );

    // The store step rewrote the damaged entry: fully warm again.
    let mut stats = CacheStats::default();
    run_matrix_cached(&spec, &params, &seeds, &args, &cache, &mut stats);
    assert_eq!(stats.misses, 0, "corrupt entry was repaired in place");
    assert_eq!(stats.hits, stats.cells);
}
