//! Regression tests: the parallel sweep engine must not change results.
//!
//! Every simulation in a sweep is seeded and self-contained, and
//! `sweep::run_parallel` preserves input order, so the rendered tables
//! must be byte-identical for any worker count. These tests pin that down
//! on the Fig. 5 path (synthetic meshes + trained NN policy) and on the
//! APU multi-seed sweep behind Figs. 9–11.

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::{apu_sweep_seeds, Fig05Params};

/// The fig05 `--quick` pipeline — NN training plus the four-policy
/// measurement sweep — produces identical stats tables with 1 and 8
/// worker threads. Parameters are the quick shape scaled down ~10× so the
/// double run stays test-suite friendly; the sweep structure (two meshes,
/// four policies, shared trained network) is exactly the binary's.
#[test]
fn fig05_tables_identical_across_thread_counts() {
    let scaled = |threads| {
        let mut p = Fig05Params::quick(42, threads);
        p.warmup = 200;
        p.measure = 800;
        p.epochs = 2;
        p.epoch_cycles = 250;
        p
    };
    let serial = bench::fig05_report(&scaled(1));
    let parallel = bench::fig05_report(&scaled(8));
    assert!(
        serial.contains("Global-age"),
        "report should contain the policy tables:\n{serial}"
    );
    assert_eq!(serial, parallel, "thread count changed the fig05 tables");
}

/// The APU seed × policy sweep (the Figs. 9–11 inner loop) returns
/// identical per-policy means for 1 and 8 worker threads, including the
/// floating-point accumulation order.
#[test]
fn apu_sweep_identical_across_thread_counts() {
    let specs = vec![Benchmark::Bfs.spec_scaled(0.02); NUM_QUADRANTS];
    let seeds = [42, 43];
    let serial = apu_sweep_seeds(&specs, &seeds, 300_000, None, 1);
    let parallel = apu_sweep_seeds(&specs, &seeds, 300_000, None, 8);
    assert_eq!(serial.len(), 6, "six policies without the NN column");
    for ((n1, a1, t1), (n2, a2, t2)) in serial.iter().zip(&parallel) {
        assert_eq!(n1, n2);
        assert_eq!(a1.to_bits(), a2.to_bits(), "{n1}: avg-exec mean differs");
        assert_eq!(t1.to_bits(), t2.to_bits(), "{n1}: tail-exec mean differs");
    }
}
