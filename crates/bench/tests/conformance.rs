//! The conformance harness's own conformance tests.
//!
//! Three contracts:
//!
//! * randomized derived cases run clean — the sweep the `repro
//!   conformance` figure performs reports zero violations for arbitrary
//!   base seeds;
//! * the harness is a pure observer — a checked case reproduces the
//!   unchecked simulator's statistics bit-for-bit;
//! * the harness has teeth — a deliberately seeded credit-leak bug is
//!   caught, and [`minimize`] shrinks the failing case to a minimal
//!   reproducer that still fails.

use proptest::prelude::*;

use bench::exp::conformance::{derive_case, minimize, run_case, ConformanceCase};
use bench::exp::spec::TopoSpec;
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Pattern, RoutingKind, SimConfig, Simulator, SyntheticTraffic};

/// A short leaky case: uniform 4×4 FIFO with the test-only credit-leak
/// hook armed partway through.
fn leaky_case(seed: u64) -> ConformanceCase {
    ConformanceCase {
        width: 8,
        height: 8,
        pattern: Pattern::Transpose,
        rate: 0.2,
        topo: TopoSpec::Mesh,
        routing: RoutingKind::XY,
        policy: PolicyKind::Fifo,
        intensity: 0.0,
        cycles: 2_000,
        seed,
        leak_at: Some(300),
        online: false,
        vc_ctl: false,
        ctl_epoch: 64,
        replay_cap: 256,
        misbehave_at: None,
    }
}

/// A case with the learned buffer controller installed and the test-only
/// misbehaving-controller hook armed: the controller path is live, and a
/// direct write to the credit books (bypassing the withhold interface)
/// must be flagged by the occupancy sweep.
fn misbehaving_controller_case(seed: u64) -> ConformanceCase {
    ConformanceCase {
        width: 8,
        height: 8,
        pattern: Pattern::Transpose,
        rate: 0.2,
        topo: TopoSpec::Mesh,
        routing: RoutingKind::XY,
        policy: PolicyKind::Fifo,
        intensity: 0.0,
        cycles: 2_000,
        seed,
        leak_at: None,
        online: false,
        vc_ctl: true,
        ctl_epoch: 64,
        replay_cap: 256,
        misbehave_at: Some(300),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Derived cases for arbitrary base seeds run clean under the
    /// checker, across the policy registry and both fault tiers.
    #[test]
    fn derived_cases_run_clean(base_seed in any::<u64>(), policy_idx in any::<u32>()) {
        let idx = policy_idx as usize % PolicyKind::ALL.len();
        let policy = PolicyKind::ALL[idx];
        for intensity in [0.0, 0.5] {
            let case = derive_case(base_seed, policy, idx, intensity, 0, 1_200);
            let out = run_case(&case);
            prop_assert_eq!(
                out.violations, 0,
                "case {} failed: {:?}", case.reproducer(), out.first
            );
        }
    }

    /// The seeded credit leak is caught for any seed, and the shrunk case
    /// both still fails and is no larger than the original.
    #[test]
    fn seeded_leak_is_caught_and_shrunk(seed in any::<u64>()) {
        let case = leaky_case(seed);
        let out = run_case(&case);
        prop_assert!(out.violations > 0, "leak went undetected: {}", case.reproducer());

        let minimal = minimize(case);
        prop_assert!(run_case(&minimal).violations > 0, "shrunk case no longer fails");
        prop_assert!(minimal.cycles <= case.cycles);
        prop_assert!(minimal.rate <= case.rate);
        // The leak is policy/pattern-independent, so shrinking must reach
        // the plainest scenario shape and a near-minimal cycle budget.
        prop_assert_eq!((minimal.width, minimal.height), (4, 4));
        prop_assert_eq!(minimal.pattern, Pattern::UniformRandom);
        // Bisection bottoms out at 500: the leak arms at cycle 300, so a
        // 250-cycle run can no longer reproduce it.
        prop_assert!(minimal.cycles <= 500, "cycles not bisected: {}", minimal.reproducer());
    }

    /// A buffer controller that corrupts the credit books directly is
    /// caught by the occupancy invariant, and the shrunk reproducer both
    /// still fails and has tightened the learned-case knobs.
    #[test]
    fn misbehaving_controller_is_caught_and_shrunk(seed in any::<u64>()) {
        let case = misbehaving_controller_case(seed);
        let out = run_case(&case);
        prop_assert!(
            out.violations > 0,
            "misbehaving controller went undetected: {}", case.reproducer()
        );
        prop_assert!(
            out.first.as_deref().is_some_and(|v| v.contains("OccupancyMismatch")),
            "wrong violation class: {:?}", out.first
        );

        let minimal = minimize(case);
        prop_assert!(run_case(&minimal).violations > 0, "shrunk case no longer fails");
        prop_assert!(minimal.cycles <= case.cycles);
        // The corruption hook fires whether or not a controller is
        // installed, so shrinking must discover the controller itself is
        // not needed to reproduce — and shed it.
        prop_assert!(!minimal.vc_ctl, "controller not shed: {}", minimal.reproducer());
    }
}

/// Checkers-off vs checkers-on byte-identity: the exact smoke CI runs.
#[test]
fn checked_and_unchecked_stats_are_byte_identical() {
    let case = derive_case(42, PolicyKind::GlobalAge, 16, 0.5, 0, 1_500);
    let build = |checked: bool| {
        let topo = case.topo.build(case.width, case.height).unwrap();
        let mut cfg = SimConfig::synthetic(case.width, case.height);
        cfg.routing = case.routing;
        let traffic =
            SyntheticTraffic::new(&topo, case.pattern, case.rate, cfg.num_vnets, case.seed);
        let mut sim =
            Simulator::new(topo, cfg, make_arbiter(case.policy, case.seed), traffic).unwrap();
        if checked {
            sim.enable_invariant_checker();
        }
        let topo = case.topo.build(case.width, case.height).unwrap();
        sim.set_fault_plan(&noc_sim::FaultPlan::generate(
            case.seed ^ 0xFAB7,
            case.intensity,
            &topo,
            case.cycles,
        ));
        sim.run(case.cycles);
        format!("{:?}", sim.stats())
    };
    assert_eq!(build(false), build(true), "the checker perturbed the run");
}

/// A non-failing case passes through `minimize` untouched.
#[test]
fn minimize_is_identity_on_passing_cases() {
    let case = derive_case(7, PolicyKind::Fifo, 4, 0.0, 0, 800);
    assert_eq!(minimize(case), case);
}
