//! Artifact-cache equivalence: a figure run against a warm
//! content-addressed store performs **zero** training steps (pinned by
//! the process-wide trainer epoch counter) and still produces
//! byte-identical text tables and table rows (hence CSVs) to the cold
//! run that populated the store — and every NN cell records the recipe
//! hash of the checkpoint it was evaluated with.
//!
//! Budgets follow the `driver_equivalence` convention: the fig09 quick
//! shape shrunk to one workload and two policies so the double run stays
//! test-suite friendly.

use std::path::PathBuf;

use bench::exp::driver::run_matrix;
use bench::exp::figures::{self, FigureKind};
use bench::exp::spec::{Lineup, ScenarioSpec, TierParams};
use bench::CliArgs;
use rl_arb::training_epochs;

fn temp_store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("bench-artifact-cache-{}", std::process::id()))
}

#[test]
fn warm_store_fig09_run_trains_zero_epochs_and_matches_cold_run_bytewise() {
    let FigureKind::Matrix { spec, render, .. } = &figures::find("fig09").unwrap().kind
    else {
        panic!("fig09 must be a matrix figure")
    };
    let mut spec = spec();
    spec.scenarios = vec![ScenarioSpec::ApuWorkload { benchmark: "bfs".into() }];
    spec.lineup = Lineup::parse(&["global-age", "nn"]);
    let params = TierParams {
        max_cycles: 300_000,
        apu_scale: 0.02,
        nn_repeats: 1,
        ..spec.quick
    };
    let seeds = [42u64, 43];
    let artifacts_dir = temp_store_dir();
    let _ = std::fs::remove_dir_all(&artifacts_dir);
    let args = CliArgs {
        quick: true,
        seed: 42,
        threads: 2,
        out_dir: PathBuf::from("results"),
        artifacts_dir: artifacts_dir.clone(),
        ..CliArgs::default()
    };

    // Cold store: the NN slot trains and the checkpoint is written.
    let before_cold = training_epochs();
    let cold = run_matrix(&spec, &params, &seeds, &args);
    assert!(
        training_epochs() > before_cold,
        "cold store must train the NN slot"
    );

    // Warm store: the exact same matrix, zero training steps.
    let before_warm = training_epochs();
    let warm = run_matrix(&spec, &params, &seeds, &args);
    assert_eq!(
        training_epochs() - before_warm,
        0,
        "warm store re-run must perform zero training steps"
    );

    // Byte-identical results: raw cells, rendered text, and the table the
    // CSV is generated from.
    assert_eq!(cold.all_cells(), warm.all_cells(), "warm cells diverged");
    let cold_rendered = render(&spec, &params, &cold);
    let warm_rendered = render(&spec, &params, &warm);
    assert_eq!(cold_rendered.text, warm_rendered.text, "warm text diverged");
    assert_eq!(cold_rendered.table, warm_rendered.table, "warm table diverged");

    // Every NN cell carries the checkpoint's recipe hash, which addresses
    // a real artifact file; untrained policies carry none.
    let cells = warm.all_cells();
    let nn_cells: Vec<_> = cells.iter().filter(|c| c.policy == "nn").collect();
    assert_eq!(nn_cells.len(), seeds.len(), "one NN cell per seed");
    let hash = nn_cells[0]
        .artifact
        .as_deref()
        .expect("NN cell records its artifact hash");
    assert_eq!(hash.len(), 16, "FNV-1a 64 recipe hash");
    assert!(
        nn_cells.iter().all(|c| c.artifact.as_deref() == Some(hash)),
        "all NN cells share the one resolved artifact"
    );
    assert!(
        artifacts_dir.join(format!("{hash}.ckpt.json")).exists(),
        "recorded hash addresses a checkpoint in the store"
    );
    assert!(
        cells.iter().filter(|c| c.policy != "nn").all(|c| c.artifact.is_none()),
        "untrained policies must not claim an artifact"
    );

    let _ = std::fs::remove_dir_all(&artifacts_dir);
}
