//! Pluggable search drivers behind one [`SearchDriver`] trait.
//!
//! A driver is a pure proposal strategy: given the evaluated history it
//! returns the next batch of design points; the runner owns evaluation,
//! caching and the record. All stochastic choices draw from the runner's
//! single main-thread [`SplitMix64`] stream, so a driver's proposal
//! sequence is a pure function of `(seed, history)` — which is what makes
//! a killed search replayable and `--threads` invisible.

use std::cmp::Ordering;

use noc_sim::SplitMix64;

use super::objective::ObjectiveVector;
use super::space::{SearchPoint, SearchSpace};

/// One evaluated design point, as drivers see it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The point's per-axis ordinals.
    pub point: SearchPoint,
    /// Its objective vector.
    pub objective: ObjectiveVector,
}

/// One proposed design point, with the driver's provenance note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// The point to evaluate.
    pub point: SearchPoint,
    /// How the driver derived it (`"init"`, `"neighbor(size)"`,
    /// `"mutate(2)"`, `"random"` …) — recorded per point.
    pub op: String,
}

/// A design-space search strategy.
///
/// Drivers never simulate: they only turn history into proposals. The
/// runner evaluates each proposal through the shared job queue and result
/// cache, appends the outcome to `history`, and calls back for the next
/// round until the budget is spent or the driver returns no proposals
/// (convergence).
///
/// # Examples
///
/// ```
/// use bench::exp::search::{driver_by_name, SearchSpace};
/// use noc_sim::SplitMix64;
///
/// let space = SearchSpace::paper_noc();
/// let mut driver = driver_by_name("hc").unwrap();
/// let mut rng = SplitMix64::new(42);
/// // An empty history yields the opening proposals (the baseline point
/// // for hill climbing).
/// let opening = driver.propose(&space, &[], &mut rng, 8);
/// assert_eq!(opening.len(), 1);
/// assert_eq!(opening[0].point, space.default_point());
/// ```
pub trait SearchDriver {
    /// The driver's stable name (`"hc"`, `"evo"`, `"random"`), used in
    /// output filenames and the `SearchRecord`.
    fn name(&self) -> &'static str;

    /// Proposes the next round of points (at most `remaining`). An empty
    /// return means the driver has converged and the search stops.
    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &[Evaluated],
        rng: &mut SplitMix64,
        remaining: usize,
    ) -> Vec<Proposal>;
}

/// Resolves a driver by its CLI name.
///
/// # Errors
///
/// Unknown names are reported with the accepted list.
pub fn driver_by_name(name: &str) -> Result<Box<dyn SearchDriver>, String> {
    match name {
        "hc" => Ok(Box::new(HillClimbDriver { center: None })),
        "evo" => Ok(Box::new(EvoDriver)),
        "random" => Ok(Box::new(RandomDriver)),
        other => Err(format!("unknown search driver '{other}' (try: hc, evo, random)")),
    }
}

/// Index of the history entry with the best (lowest) score; ties keep the
/// earliest entry, so the choice is replay-stable.
fn best_index(history: &[Evaluated]) -> usize {
    history
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.objective
                .score
                .partial_cmp(&b.objective.score)
                .unwrap_or(Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("best_index on non-empty history")
}

/// Pure random search: a uniform sample of the space each round. The
/// baseline every smarter driver has to beat.
#[derive(Debug)]
pub struct RandomDriver;

/// Points a random round proposes (capped by the remaining budget).
const RANDOM_ROUND: usize = 8;

impl SearchDriver for RandomDriver {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(
        &mut self,
        space: &SearchSpace,
        _history: &[Evaluated],
        rng: &mut SplitMix64,
        remaining: usize,
    ) -> Vec<Proposal> {
        (0..RANDOM_ROUND.min(remaining))
            .map(|_| Proposal { point: space.random_point(rng), op: "random".into() })
            .collect()
    }
}

/// Greedy hill climbing over the axes — the generalization of the
/// feature-selection climb (`rl_arb::greedy_climb`) from feature subsets
/// to the full design space.
///
/// Starts at the space's baseline point, expands every unvisited
/// single-axis neighbor of the incumbent best point, re-centers on the
/// best evaluation so far, and stops when the best point's whole
/// neighborhood has been visited without finding an improvement.
#[derive(Debug)]
pub struct HillClimbDriver {
    /// The point whose neighborhood was last expanded.
    center: Option<SearchPoint>,
}

impl SearchDriver for HillClimbDriver {
    fn name(&self) -> &'static str {
        "hc"
    }

    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &[Evaluated],
        _rng: &mut SplitMix64,
        remaining: usize,
    ) -> Vec<Proposal> {
        if history.is_empty() {
            return vec![Proposal { point: space.default_point(), op: "init".into() }];
        }
        let best = &history[best_index(history)].point;
        if self.center.as_ref() == Some(best) {
            // The whole neighborhood of the incumbent has been evaluated
            // and nothing beat it: a local optimum.
            return Vec::new();
        }
        self.center = Some(best.clone());
        let mut proposals: Vec<Proposal> = space
            .neighbors(best)
            .into_iter()
            .filter(|n| history.iter().all(|e| &e.point != n))
            .map(|n| {
                let axis = (0..n.len())
                    .find(|&i| n[i] != best[i])
                    .expect("neighbor differs in one axis");
                Proposal { point: n, op: format!("neighbor({})", space.axes[axis].name) }
            })
            .collect();
        proposals.truncate(remaining);
        proposals
    }
}

/// (µ+λ) evolutionary search: µ = `EVO_PARENTS` survivors by score,
/// λ = `EVO_OFFSPRING` mutated offspring per generation.
#[derive(Debug)]
pub struct EvoDriver;

/// Survivors kept as parents each generation.
const EVO_PARENTS: usize = 4;
/// Offspring proposed each generation (and the size of the random
/// opening generation).
const EVO_OFFSPRING: usize = 8;

impl SearchDriver for EvoDriver {
    fn name(&self) -> &'static str {
        "evo"
    }

    fn propose(
        &mut self,
        space: &SearchSpace,
        history: &[Evaluated],
        rng: &mut SplitMix64,
        remaining: usize,
    ) -> Vec<Proposal> {
        if history.is_empty() {
            return (0..EVO_OFFSPRING.min(remaining))
                .map(|_| Proposal { point: space.random_point(rng), op: "init".into() })
                .collect();
        }
        // Parents: the best-scoring history entries, earliest-first on
        // ties (sort_by is stable, so replay cannot reorder them).
        let mut ranked: Vec<usize> = (0..history.len()).collect();
        ranked.sort_by(|&a, &b| {
            history[a]
                .objective
                .score
                .partial_cmp(&history[b].objective.score)
                .unwrap_or(Ordering::Equal)
        });
        let parents = &ranked[..EVO_PARENTS.min(ranked.len())];
        (0..EVO_OFFSPRING.min(remaining))
            .map(|_| {
                let parent = parents[rng.next_bounded(parents.len() as u64) as usize];
                let mut point = history[parent].point.clone();
                let mutations = 1 + rng.next_bounded(2);
                for _ in 0..mutations {
                    space.mutate(&mut point, rng);
                }
                Proposal { point, op: format!("mutate({parent})") }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluated(point: SearchPoint, score: f64) -> Evaluated {
        Evaluated {
            point,
            objective: ObjectiveVector {
                latency: score,
                throughput: 1.0,
                gates: 1.0,
                score,
            },
        }
    }

    #[test]
    fn unknown_driver_names_error_with_the_list() {
        let Err(err) = driver_by_name("anneal") else {
            panic!("unknown driver must not resolve")
        };
        assert!(err.contains("hc, evo, random"), "got: {err}");
        for name in ["hc", "evo", "random"] {
            assert_eq!(driver_by_name(name).unwrap().name(), name);
        }
    }

    #[test]
    fn hill_climb_opens_at_the_baseline_then_expands_neighbors() {
        let space = SearchSpace::paper_noc();
        let mut driver = HillClimbDriver { center: None };
        let mut rng = SplitMix64::new(1);
        let opening = driver.propose(&space, &[], &mut rng, 100);
        assert_eq!(opening.len(), 1);
        assert_eq!(opening[0].point, space.default_point());
        assert_eq!(opening[0].op, "init");

        let history = vec![evaluated(space.default_point(), 10.0)];
        let round2 = driver.propose(&space, &history, &mut rng, 100);
        assert_eq!(round2.len(), space.neighbors(&space.default_point()).len());
        assert!(round2.iter().all(|p| p.op.starts_with("neighbor(")));
    }

    #[test]
    fn hill_climb_converges_when_the_center_stays_best() {
        let space = SearchSpace::paper_noc();
        let mut driver = HillClimbDriver { center: None };
        let mut rng = SplitMix64::new(1);
        let mut history = vec![evaluated(space.default_point(), 10.0)];
        let neighbors = driver.propose(&space, &history, &mut rng, 100);
        // Every neighbor evaluates worse than the center.
        for p in &neighbors {
            history.push(evaluated(p.point.clone(), 20.0));
        }
        assert!(
            driver.propose(&space, &history, &mut rng, 100).is_empty(),
            "no improvement anywhere in the neighborhood means convergence"
        );
    }

    #[test]
    fn hill_climb_recenters_on_an_improving_neighbor() {
        let space = SearchSpace::paper_noc();
        let mut driver = HillClimbDriver { center: None };
        let mut rng = SplitMix64::new(1);
        let mut history = vec![evaluated(space.default_point(), 10.0)];
        let neighbors = driver.propose(&space, &history, &mut rng, 100);
        let winner = neighbors[0].point.clone();
        for (i, p) in neighbors.iter().enumerate() {
            history.push(evaluated(p.point.clone(), if i == 0 { 5.0 } else { 20.0 }));
        }
        let round3 = driver.propose(&space, &history, &mut rng, 100);
        assert!(!round3.is_empty(), "an improving neighbor re-centers the climb");
        // The new round expands the winner's neighborhood, minus what has
        // already been visited.
        for p in &round3 {
            assert!(space.neighbors(&winner).contains(&p.point));
            assert!(history.iter().all(|e| e.point != p.point));
        }
    }

    #[test]
    fn evo_seeds_randomly_then_mutates_parents() {
        let space = SearchSpace::paper_noc();
        let mut driver = EvoDriver;
        let mut rng = SplitMix64::new(3);
        let opening = driver.propose(&space, &[], &mut rng, 100);
        assert_eq!(opening.len(), EVO_OFFSPRING);
        assert!(opening.iter().all(|p| p.op == "init"));

        let history: Vec<Evaluated> = opening
            .iter()
            .enumerate()
            .map(|(i, p)| evaluated(p.point.clone(), i as f64))
            .collect();
        let gen2 = driver.propose(&space, &history, &mut rng, 100);
        assert_eq!(gen2.len(), EVO_OFFSPRING);
        for p in &gen2 {
            let parent: usize = p
                .op
                .strip_prefix("mutate(")
                .and_then(|s| s.strip_suffix(')'))
                .and_then(|s| s.parse().ok())
                .expect("offspring op names its parent");
            assert!(parent < EVO_PARENTS, "parents are the best {EVO_PARENTS}");
            assert_ne!(p.point, history[parent].point, "offspring must mutate");
        }
    }

    #[test]
    fn proposals_respect_the_remaining_budget() {
        let space = SearchSpace::paper_noc();
        let mut rng = SplitMix64::new(5);
        for name in ["hc", "evo", "random"] {
            let mut driver = driver_by_name(name).unwrap();
            assert!(driver.propose(&space, &[], &mut rng, 1).len() <= 1, "{name}");
        }
    }

    #[test]
    fn proposal_streams_are_seed_deterministic() {
        let space = SearchSpace::paper_noc();
        for name in ["evo", "random"] {
            let run = |seed: u64| {
                let mut driver = driver_by_name(name).unwrap();
                let mut rng = SplitMix64::new(seed);
                driver.propose(&space, &[], &mut rng, 100)
            };
            assert_eq!(run(9), run(9), "{name} must be a pure function of the seed");
        }
    }
}
