//! The searchable design space: seven tunable axes over the declarative
//! [`ExperimentSpec`].
//!
//! A design point is a vector of per-axis ordinals ([`SearchPoint`]); the
//! space knows how to decode a point into a one-scenario experiment spec
//! (fabric sizing via [`NocParams`], agent hyperparameters via
//! [`NnRecipe::SyntheticTuned`]), how to enumerate a point's single-axis
//! neighbors (hill climbing), and how to mutate one axis (the
//! evolutionary driver). Levels are small closed sets, so the whole space
//! is finite, hashable and replayable.

use noc_sim::{Pattern, RoutingKind, SplitMix64};
use rl_arb::RewardKind;

use super::super::spec::{
    fnv1a64, ExperimentSpec, Lineup, NnRecipe, NocParams, Normalize, ScenarioSpec, TierParams,
    TopoSpec,
};

/// One design point: a per-axis ordinal into each axis' level list, in
/// [`SearchSpace::axes`] order.
pub type SearchPoint = Vec<usize>;

/// One tunable axis: its name and the human-facing labels of its levels
/// (the decode tables live in the space itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Stable axis name, recorded in the `SearchRecord`.
    pub name: &'static str,
    /// Level labels, in ordinal order.
    pub levels: Vec<String>,
}

/// Mesh/torus/ring side lengths: a point's fabric is built at
/// `side × side` scale (the ring lays the same router count out in one
/// cycle), so rows across the size axis stay comparable per-router.
const SIDES: [u16; 3] = [4, 6, 8];
/// The topology × routing pairs the fabric axis sweeps. Only
/// deadlock-free, topology-compatible pairs appear (the routing figure's
/// own pairing rules).
const FABRICS: [(&str, TopoSpec, RoutingKind); 4] = [
    ("mesh-xy", TopoSpec::Mesh, RoutingKind::XY),
    ("mesh-wfa", TopoSpec::Mesh, RoutingKind::WestFirstAdaptive),
    ("torus-dor", TopoSpec::Torus, RoutingKind::TorusDimOrder),
    ("ring-short", TopoSpec::Ring, RoutingKind::RingShortest),
];
/// Virtual-network counts. The NN encoder is sized
/// `ports × vnets × features`, so this axis also scales the agent (and
/// its gate cost).
const VNETS: [usize; 3] = [2, 3, 4];
/// Per-VC buffer depths in flits. The floor is the synthetic
/// `max_packet_flits` (5) — shallower buffers cannot hold one packet and
/// the simulator rejects them.
const VC_CAPS: [u32; 3] = [5, 8, 16];
/// Discount factor γ, in percent (integer-scaled so specs stay `Eq`).
const GAMMAS: [u8; 4] = [0, 20, 50, 90];
/// Learning rate, in units of 1e-4.
const LRS: [u32; 3] = [10, 100, 500];

/// Injection rate every point runs at: high enough to separate policies,
/// low enough that every fabric in the space stays stable.
const RATE: f64 = 0.30;

/// The design space: the paper-NoC axes, their decode tables, and the
/// point → spec translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// The axes, in point-ordinal order.
    pub axes: Vec<Axis>,
}

impl SearchSpace {
    /// The paper's NoC design space: fabric sizing (mesh/torus/ring side,
    /// VC count, buffer depth, routing) crossed with agent
    /// hyperparameters (γ, learning rate, reward formulation).
    pub fn paper_noc() -> Self {
        let axis = |name: &'static str, levels: Vec<String>| Axis { name, levels };
        SearchSpace {
            axes: vec![
                axis("size", SIDES.iter().map(|s| format!("{s}x{s}")).collect()),
                axis("fabric", FABRICS.iter().map(|(l, _, _)| l.to_string()).collect()),
                axis("vnets", VNETS.iter().map(|v| format!("v{v}")).collect()),
                axis("vc-capacity", VC_CAPS.iter().map(|c| format!("c{c}")).collect()),
                axis("gamma", GAMMAS.iter().map(|g| format!("g{g}")).collect()),
                axis("lr", LRS.iter().map(|l| format!("lr{l}")).collect()),
                axis(
                    "reward",
                    RewardKind::ALL.iter().map(|r| r.label().to_string()).collect(),
                ),
            ],
        }
    }

    /// Number of axes (the length of every valid [`SearchPoint`]).
    pub fn num_axes(&self) -> usize {
        self.axes.len()
    }

    /// The baseline point hill climbing starts from: the paper's 4x4
    /// X-Y mesh at the simulator-default fabric sizing and the tuned
    /// agent hyperparameters.
    pub fn default_point(&self) -> SearchPoint {
        vec![0, 0, 1, 1, 1, 2, 0]
    }

    /// A uniformly random point (every axis drawn independently).
    pub fn random_point(&self, rng: &mut SplitMix64) -> SearchPoint {
        self.axes
            .iter()
            .map(|a| rng.next_bounded(a.levels.len() as u64) as usize)
            .collect()
    }

    /// All single-axis ±1 neighbors of `point`, clamped to each axis'
    /// range, in axis-major (then −1 before +1) order.
    pub fn neighbors(&self, point: &SearchPoint) -> Vec<SearchPoint> {
        let mut out = Vec::new();
        for (axis, &ord) in point.iter().enumerate() {
            let levels = self.axes[axis].levels.len();
            if ord > 0 {
                let mut n = point.clone();
                n[axis] = ord - 1;
                out.push(n);
            }
            if ord + 1 < levels {
                let mut n = point.clone();
                n[axis] = ord + 1;
                out.push(n);
            }
        }
        out
    }

    /// Mutates one uniformly chosen axis of `point` to a different
    /// uniformly chosen level (in place). Axes with a single level are
    /// never chosen.
    pub fn mutate(&self, point: &mut SearchPoint, rng: &mut SplitMix64) {
        let axis = rng.next_bounded(self.axes.len() as u64) as usize;
        let levels = self.axes[axis].levels.len();
        if levels < 2 {
            return;
        }
        // Draw from the other `levels - 1` ordinals so the mutation
        // always changes the point.
        let step = 1 + rng.next_bounded(levels as u64 - 1) as usize;
        point[axis] = (point[axis] + step) % levels;
    }

    /// The human-facing level labels of `point`, in axis order.
    pub fn labels(&self, point: &SearchPoint) -> Vec<String> {
        point
            .iter()
            .enumerate()
            .map(|(axis, &ord)| self.axes[axis].levels[ord].clone())
            .collect()
    }

    /// One compact label for `point` (the scenario label its cells carry).
    pub fn point_label(&self, point: &SearchPoint) -> String {
        self.labels(point).join("/")
    }

    /// The virtual-network count `point` selects (sizes the NN encoder,
    /// and therefore the inference gate cost).
    pub fn vnets_of(&self, point: &SearchPoint) -> usize {
        VNETS[point[2]]
    }

    /// FNV-1a hash over the axis names and level labels — stamped into
    /// the `SearchRecord` so a resumed search can detect that the space
    /// definition changed underneath it.
    pub fn hash_hex(&self) -> String {
        let mut canon = String::from("search-space-v1");
        for a in &self.axes {
            canon.push('|');
            canon.push_str(a.name);
            canon.push('=');
            canon.push_str(&a.levels.join(","));
        }
        format!("{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Decodes `point` into its one-scenario [`ExperimentSpec`]: an NN
    /// line-up trained by [`NnRecipe::SyntheticTuned`] at the point's
    /// hyperparameters, running on the point's fabric. The spec's
    /// `hash_hex` is the point's identity in the result cache and the
    /// search memo.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong arity or an out-of-range ordinal —
    /// points come from this space's own proposal methods, so that is a
    /// driver bug.
    pub fn spec_for(&self, point: &SearchPoint) -> ExperimentSpec {
        assert_eq!(point.len(), self.num_axes(), "point arity mismatch");
        let side = SIDES[point[0]];
        let (_, topo, routing) = FABRICS[point[1]];
        let vnets = VNETS[point[2]];
        let vc_capacity_flits = VC_CAPS[point[3]];
        let gamma_pct = GAMMAS[point[4]];
        let lr_e4 = LRS[point[5]];
        let reward = RewardKind::ALL[point[6]];
        let label = self.point_label(point);
        ExperimentSpec {
            figure: "search-point".into(),
            output: "search-point".into(),
            title: format!("design point {label}"),
            lineup: Lineup::parse(&["nn"]),
            nn: Some(NnRecipe::SyntheticTuned { gamma_pct, lr_e4, reward }),
            scenarios: vec![ScenarioSpec::Synthetic {
                label,
                width: side,
                height: side,
                pattern: Pattern::UniformRandom,
                rate: RATE,
                topo,
                routing,
                starvation_threshold: None,
                noc: Some(NocParams { vnets, vc_capacity_flits }),
                lineup: None,
            }],
            faults: None,
            quick: TierParams {
                warmup: 200,
                measure: 800,
                seeds: 1,
                nn_epochs: 2,
                nn_epoch_cycles: 200,
                ..TierParams::zeroed()
            },
            full: TierParams {
                warmup: 1_000,
                measure: 4_000,
                seeds: 2,
                nn_epochs: 8,
                nn_epoch_cycles: 1_000,
                ..TierParams::zeroed()
            },
            normalize: Normalize::None,
        }
    }

    /// Convenience: the spec hash of `point` (see [`Self::spec_for`]).
    pub fn spec_hash(&self, point: &SearchPoint) -> String {
        self.spec_for(point).hash_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_point_is_in_range() {
        let space = SearchSpace::paper_noc();
        let p = space.default_point();
        assert_eq!(p.len(), space.num_axes());
        for (axis, &ord) in p.iter().enumerate() {
            assert!(ord < space.axes[axis].levels.len(), "axis {axis} out of range");
        }
        assert_eq!(space.point_label(&p), "4x4/mesh-xy/v3/c8/g20/lr500/global_age");
    }

    #[test]
    fn neighbors_differ_in_exactly_one_axis() {
        let space = SearchSpace::paper_noc();
        let p = space.default_point();
        let neighbors = space.neighbors(&p);
        assert!(!neighbors.is_empty());
        for n in &neighbors {
            let diffs: Vec<usize> =
                (0..p.len()).filter(|&i| n[i] != p[i]).collect();
            assert_eq!(diffs.len(), 1, "{n:?} is not a single-axis step from {p:?}");
            let axis = diffs[0];
            assert_eq!(n[axis].abs_diff(p[axis]), 1, "step must be ±1");
        }
        // Interior ordinals contribute two neighbors, edges one.
        let expected: usize = p
            .iter()
            .enumerate()
            .map(|(axis, &ord)| {
                usize::from(ord > 0) + usize::from(ord + 1 < space.axes[axis].levels.len())
            })
            .sum();
        assert_eq!(neighbors.len(), expected);
    }

    #[test]
    fn mutate_always_changes_the_point() {
        let space = SearchSpace::paper_noc();
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let before = space.default_point();
            let mut after = before.clone();
            space.mutate(&mut after, &mut rng);
            assert_ne!(before, after, "mutation must change exactly one axis");
            assert_eq!(
                (0..before.len()).filter(|&i| before[i] != after[i]).count(),
                1
            );
        }
    }

    #[test]
    fn spec_hash_separates_points_and_is_stable() {
        let space = SearchSpace::paper_noc();
        let a = space.default_point();
        let mut b = a.clone();
        b[3] = 2; // deeper VC buffers
        assert_eq!(space.spec_hash(&a), space.spec_hash(&a));
        assert_ne!(space.spec_hash(&a), space.spec_hash(&b));
        // Every point decodes to a valid one-scenario spec.
        let spec = space.spec_for(&b);
        assert_eq!(spec.scenarios.len(), 1);
        assert!(spec.lineup.has_nn_slot());
    }

    #[test]
    fn space_hash_sees_level_changes() {
        let a = SearchSpace::paper_noc();
        let mut b = SearchSpace::paper_noc();
        b.axes[0].levels.push("10x10".into());
        assert_ne!(a.hash_hex(), b.hash_hex());
    }
}
