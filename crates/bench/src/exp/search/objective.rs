//! The search objective: simulated latency/throughput folded with the
//! analytical hardware cost of the point's inference engine.
//!
//! Latency and throughput come from the point's run matrix (seed-mean of
//! the NN policy's cells, the same accumulation order as every figure, so
//! values are thread-invariant). Hardware cost comes from
//! [`hw_cost::cost_agent_inference`] on the agent the point actually
//! trains, expressed as NAND2 gate-equivalents of the whole engine (MAC
//! array logic plus weight SRAM — the SRAM is what scales with network
//! shape, since the MAC array is a fixed 128 lanes). The synthetic
//! training fabric is always a mesh (5 router ports), so the network
//! shape is `5 × vnets × 4` inputs, 15 hidden neurons, `5 × vnets`
//! actions — the vnets axis scales the hardware, the fabric axis does
//! not.

use hw_cost::TechNode;

use super::super::driver::MatrixData;
use super::space::{SearchPoint, SearchSpace};

/// Hidden-layer width of the synthetic agent (§3.2).
const HIDDEN: usize = 15;
/// Per-buffer feature count of the synthetic feature set.
const FEATURES: usize = 4;
/// Router ports on the (always-mesh) training fabric.
const PORTS: usize = 5;
/// MAC-array width of the costed inference engine.
const PARALLEL_MACS: usize = 128;

/// One evaluated point's objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveVector {
    /// Mean NN-policy message latency over the point's seeds (cycles).
    pub latency: f64,
    /// Mean NN-policy throughput over the point's seeds (flits/cycle).
    pub throughput: f64,
    /// Gate-equivalent count of the point's INT8 inference engine
    /// (32 nm; NAND2-equivalents of logic + weight SRAM).
    pub gates: f64,
    /// Scalar ranking score, lower is better:
    /// `latency × gates / throughput`.
    pub score: f64,
}

/// Computes the objective of one point from its drained run matrix.
///
/// # Panics
///
/// Panics if the matrix is empty — search specs always carry exactly one
/// scenario.
pub fn evaluate(space: &SearchSpace, point: &SearchPoint, data: &MatrixData) -> ObjectiveVector {
    let scenario = data.scenarios.first().expect("search spec has one scenario");
    // The line-up is ["nn"], so policy index 0 is the trained agent.
    let latency = scenario.mean(0, "avg_latency");
    let throughput = scenario.mean(0, "throughput");
    let gates = gate_cost(space.vnets_of(point));
    let score = latency * gates / throughput.max(1e-9);
    ObjectiveVector { latency, throughput, gates, score }
}

/// Gate-equivalent count of the inference engine for a `vnets`-sized
/// agent: the engine's total area (MAC logic + weight SRAM) divided by
/// the NAND2 cell area, so the number scales with the encoder the way a
/// synthesized macro would.
pub fn gate_cost(vnets: usize) -> f64 {
    let tech = TechNode::nm32();
    let report = hw_cost::cost_agent_inference(
        PORTS * vnets * FEATURES,
        HIDDEN,
        PORTS * vnets,
        PARALLEL_MACS,
        &tech,
    );
    report.area_mm2 * 1e6 / tech.gate_area_um2
}

/// The Pareto-optimal indices of `objectives` (minimize latency, maximize
/// throughput, minimize gates), in input order.
///
/// A point is dominated when another point is at least as good on every
/// criterion and strictly better on one. Duplicate objective vectors keep
/// their first occurrence only, so a memo-replayed revisit never pads the
/// front.
pub fn pareto_front(objectives: &[ObjectiveVector]) -> Vec<usize> {
    let dominates = |a: &ObjectiveVector, b: &ObjectiveVector| {
        let ge = a.latency <= b.latency && a.throughput >= b.throughput && a.gates <= b.gates;
        let gt = a.latency < b.latency || a.throughput > b.throughput || a.gates < b.gates;
        ge && gt
    };
    let same = |a: &ObjectiveVector, b: &ObjectiveVector| {
        a.latency == b.latency && a.throughput == b.throughput && a.gates == b.gates
    };
    (0..objectives.len())
        .filter(|&i| {
            let earlier_duplicate =
                objectives[..i].iter().any(|o| same(o, &objectives[i]));
            let dominated = objectives
                .iter()
                .any(|o| dominates(o, &objectives[i]));
            !earlier_duplicate && !dominated
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(latency: f64, throughput: f64, gates: f64) -> ObjectiveVector {
        ObjectiveVector { latency, throughput, gates, score: latency * gates / throughput }
    }

    #[test]
    fn dominated_points_fall_off_the_front() {
        let objs = vec![
            obj(10.0, 1.0, 100.0), // on the front
            obj(12.0, 0.9, 120.0), // dominated by the first
            obj(8.0, 0.5, 90.0),   // trades throughput for latency: on the front
        ];
        assert_eq!(pareto_front(&objs), vec![0, 2]);
    }

    #[test]
    fn duplicates_keep_first_occurrence() {
        let objs = vec![obj(10.0, 1.0, 100.0), obj(10.0, 1.0, 100.0)];
        assert_eq!(pareto_front(&objs), vec![0]);
    }

    #[test]
    fn gate_cost_grows_with_vnets() {
        assert!(gate_cost(2) > 0.0);
        assert!(
            gate_cost(4) > gate_cost(2),
            "more vnets means a wider encoder and more hardware"
        );
    }
}
