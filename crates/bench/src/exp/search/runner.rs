//! The search runner: drives a [`SearchDriver`] through the shared job
//! queue and result cache, emits the `SearchRecord` JSON and the Pareto
//! CSV, and replays a prior record to resume a killed search.
//!
//! ## Determinism and resume
//!
//! Every stochastic proposal decision draws from one main-thread
//! [`noc_sim::SplitMix64`] stream seeded by `(base seed, driver)`, and a
//! driver's proposals are a pure function of `(seed, history)`. Cells
//! evaluate through `MatrixBatch` — the same thread-invariant pipeline
//! every figure uses — so the whole trace is byte-identical for any
//! `--threads` count.
//!
//! Resume is replay: on start the runner loads `search_<driver>.json`
//! from `--out-dir` (if its header matches this invocation) and memoizes
//! every recorded `spec_hash → objective`. The loop then re-runs from
//! scratch; recorded points answer from the memo with zero simulation and
//! zero training, the proposal RNG advances exactly as it did before, and
//! the search continues from wherever the killed run stopped. The record
//! is checkpointed atomically after every proposal round, so there is no
//! window in which a kill loses more than the in-flight round.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use rl_arb::progress;

use super::super::cache::{CacheStats, ResultCache};
use super::super::driver::{MatrixBatch, MatrixData};
use super::super::record::{git_describe, json_num};
use super::super::spec::{fnv1a64, Tier};
use super::drivers::{driver_by_name, Evaluated, SearchDriver};
use super::objective::{evaluate, pareto_front, ObjectiveVector};
use super::record::{SearchPointRecord, SearchRecord, SEARCH_SCHEMA_VERSION};
use super::space::SearchSpace;
use crate::{write_csv, CliArgs};

/// Everything one search run produced, for in-process callers (the
/// figure wrapper, tests).
#[derive(Debug)]
pub struct SearchOutcome {
    /// The full trace, as written to disk.
    pub record: SearchRecord,
    /// Cache accounting for the run (memo replays contribute nothing —
    /// they touch neither the queue nor the cache).
    pub stats: CacheStats,
    /// Points answered from a prior record's memo while resuming.
    pub memo_replays: u64,
    /// Where the `SearchRecord` JSON was written.
    pub record_path: PathBuf,
    /// Where the Pareto CSV was written.
    pub csv_path: PathBuf,
}

/// Column headers of the Pareto CSV (and the figure's table).
pub const PARETO_HEADERS: [&str; 7] =
    ["index", "point", "latency", "throughput", "gates", "score", "cache"];

/// Runs a design-space search end-to-end: resolve the driver, replay any
/// resumable record, drive proposal rounds through the shared queue and
/// result cache until the budget is spent or the driver converges, and
/// write `search_<driver>.json` plus `search_<driver>_pareto.csv` into
/// `--out-dir`.
///
/// # Errors
///
/// Unknown driver names and output-directory I/O failures are reported.
/// A corrupt or header-mismatched prior record is *not* an error — the
/// search starts fresh and overwrites it.
pub fn run_search(args: &CliArgs) -> Result<SearchOutcome, String> {
    let mut driver = driver_by_name(&args.driver)?;
    let tier = if args.quick { Tier::Quick } else { Tier::Full };
    let space = SearchSpace::paper_noc();
    let record_path = args.out_dir.join(format!("search_{}.json", driver.name()));
    let csv_path = args.out_dir.join(format!("search_{}_pareto.csv", driver.name()));

    // The proposal RNG: one main-thread stream, domain-separated per
    // driver so `--driver hc` and `--driver evo` at the same seed explore
    // independently.
    let rng_seed = args.seed ^ fnv1a64(format!("search:{}", driver.name()).as_bytes());
    let mut rng = noc_sim::SplitMix64::new(rng_seed);

    // Resume memo: spec_hash → objective from a prior record whose
    // header matches this invocation (budget deliberately excluded, so a
    // finished budget-8 search extends under budget-32).
    let mut memo: HashMap<String, ObjectiveVector> = HashMap::new();
    if let Some(prior) = load_resumable(&record_path, driver.as_ref(), args, tier, &space) {
        for p in &prior.points {
            memo.insert(
                p.spec_hash.clone(),
                ObjectiveVector {
                    latency: p.latency,
                    throughput: p.throughput,
                    gates: p.gates,
                    score: p.score,
                },
            );
        }
        progress!(
            "resuming search from {} ({} recorded point(s))",
            record_path.display(),
            prior.points.len()
        );
    }

    let cache = ResultCache::from_args(args);
    let sim_before = noc_sim::simulated_cycles();
    let mut history: Vec<Evaluated> = Vec::new();
    let mut points: Vec<SearchPointRecord> = Vec::new();
    let mut stats = CacheStats::default();
    let mut memo_replays: u64 = 0;
    let mut round: u64 = 0;

    while history.len() < args.budget {
        let remaining = args.budget - history.len();
        let proposals = driver.propose(&space, &history, &mut rng, remaining);
        if proposals.is_empty() {
            progress!("driver {} converged after {} evaluation(s)", driver.name(), history.len());
            break;
        }
        round += 1;
        // Evaluate the round: memoized points answer instantly, fresh
        // ones batch through one shared queue + cache drain.
        enum Pending {
            Memo(ObjectiveVector),
            Fresh(usize),
        }
        let mut batch = MatrixBatch::new(args, Some(&cache));
        let mut pending: Vec<(String, Pending)> = Vec::with_capacity(proposals.len());
        for prop in &proposals {
            let spec = space.spec_for(&prop.point);
            let hash = spec.hash_hex();
            match memo.get(&hash) {
                Some(obj) => pending.push((hash, Pending::Memo(obj.clone()))),
                None => {
                    let params = *spec.params(tier);
                    let seeds = spec.seed_list(args.seed, tier);
                    let idx = batch.add_spec(&spec, &params, &seeds);
                    pending.push((hash, Pending::Fresh(idx)));
                }
            }
        }
        let drained = batch.drain();
        stats.absorb(drained.stats);
        for (prop, (hash, source)) in proposals.iter().zip(pending) {
            let (objective, cache_stamp) = match source {
                Pending::Memo(obj) => {
                    memo_replays += 1;
                    (obj, "memo".to_string())
                }
                Pending::Fresh(idx) => {
                    let data = drained.matrix(idx);
                    (evaluate(&space, &prop.point, &data), cells_stamp(&data))
                }
            };
            memo.insert(hash.clone(), objective.clone());
            points.push(SearchPointRecord {
                index: points.len() as u64,
                round,
                op: prop.op.clone(),
                ordinals: prop.point.clone(),
                labels: space.labels(&prop.point),
                spec_hash: hash,
                latency: objective.latency,
                throughput: objective.throughput,
                gates: objective.gates,
                score: objective.score,
                cache: cache_stamp,
            });
            history.push(Evaluated { point: prop.point.clone(), objective });
        }
        // Checkpoint: a kill after this line loses at most the next
        // round's in-flight work.
        let record = assemble(driver.as_ref(), args, tier, &space, &points, &history);
        checkpoint(&record, &record_path, &csv_path)?;
    }

    stats.simulated_cycles = noc_sim::simulated_cycles() - sim_before;
    let record = assemble(driver.as_ref(), args, tier, &space, &points, &history);
    checkpoint(&record, &record_path, &csv_path)?;
    Ok(SearchOutcome { record, stats, memo_replays, record_path, csv_path })
}

/// Cache provenance of one freshly assembled matrix: `"hit"` when every
/// cell came from the result cache, `"miss"` when none did, `"mixed"`
/// otherwise.
fn cells_stamp(data: &MatrixData) -> String {
    let cells = data.all_cells();
    let hits = cells.iter().filter(|c| c.cache.as_deref() == Some("hit")).count();
    if hits == cells.len() {
        "hit".into()
    } else if hits == 0 {
        "miss".into()
    } else {
        "mixed".into()
    }
}

/// Builds the record for the current trace (Pareto front recomputed from
/// scratch — it is a pure function of the objectives).
fn assemble(
    driver: &dyn SearchDriver,
    args: &CliArgs,
    tier: Tier,
    space: &SearchSpace,
    points: &[SearchPointRecord],
    history: &[Evaluated],
) -> SearchRecord {
    let objectives: Vec<ObjectiveVector> =
        history.iter().map(|e| e.objective.clone()).collect();
    SearchRecord {
        schema_version: SEARCH_SCHEMA_VERSION,
        driver: driver.name().into(),
        base_seed: args.seed,
        budget: args.budget as u64,
        tier: tier.as_str().into(),
        git_describe: git_describe(),
        space_hash: space.hash_hex(),
        axes: space
            .axes
            .iter()
            .map(|a| (a.name.to_string(), a.levels.clone()))
            .collect(),
        points: points.to_vec(),
        pareto: pareto_front(&objectives).into_iter().map(|i| i as u64).collect(),
    }
}

/// Writes the record (atomically: temp file + rename, so a kill can
/// never leave a truncated record) and the Pareto CSV.
fn checkpoint(
    record: &SearchRecord,
    record_path: &Path,
    csv_path: &Path,
) -> Result<(), String> {
    write_atomic(record_path, &record.to_json())
        .map_err(|e| format!("writing {}: {e}", record_path.display()))?;
    let rows = pareto_rows(record);
    write_csv(csv_path, &PARETO_HEADERS, &rows)
        .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    Ok(())
}

/// The Pareto front as CSV/table rows, in evaluation order. Floats use
/// the shortest round-trip form, so the bytes are thread-invariant.
pub fn pareto_rows(record: &SearchRecord) -> Vec<Vec<String>> {
    record
        .pareto
        .iter()
        .map(|&i| {
            let p = &record.points[i as usize];
            vec![
                p.index.to_string(),
                p.labels.join("/"),
                json_num(p.latency),
                json_num(p.throughput),
                json_num(p.gates),
                json_num(p.score),
                p.cache.clone(),
            ]
        })
        .collect()
}

/// Atomic file write: unique temp file in the target directory, then
/// rename.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a prior record for resume, if one exists and its header matches
/// this invocation (same driver, base seed, tier and space definition —
/// the budget may differ, which is what lets a finished search extend).
fn load_resumable(
    path: &Path,
    driver: &dyn SearchDriver,
    args: &CliArgs,
    tier: Tier,
    space: &SearchSpace,
) -> Option<SearchRecord> {
    let text = std::fs::read_to_string(path).ok()?;
    let record = match SearchRecord::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            progress!("ignoring unreadable search record {}: {e}", path.display());
            return None;
        }
    };
    let matches = record.driver == driver.name()
        && record.base_seed == args.seed
        && record.tier == tier.as_str()
        && record.space_hash == space.hash_hex();
    if !matches {
        progress!(
            "ignoring search record {} (different driver/seed/tier/space)",
            path.display()
        );
        return None;
    }
    Some(record)
}
