//! `SearchRecord` — the versioned, structured trace of one search run.
//!
//! Every `repro search` invocation writes one `SearchRecord` JSON next to
//! its Pareto CSV: every evaluated point with its objective vector, cache
//! provenance and driver provenance (`op`), plus the Pareto-front
//! indices. The record deliberately excludes the thread count and any
//! timestamp, so two runs of the same `(driver, seed, budget, tier)` are
//! byte-identical for any `--threads` — and a killed search resumes by
//! replaying its own record (see [`super::runner`]).

use std::fmt::Write as _;

use super::super::record::{json_num, json_str, Json, ObjExt};

/// Version stamp of the `SearchRecord` JSON schema. Bump on any breaking
/// change and teach consumers both shapes.
///
/// History:
/// * **v1** — initial schema: header (`driver`, `base_seed`, `budget`,
///   `tier`, `git_describe`, `space_hash`), the axis/level tables, the
///   per-point trace and the Pareto indices.
pub const SEARCH_SCHEMA_VERSION: u64 = 1;

/// One evaluated design point in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchPointRecord {
    /// Evaluation index (position in the trace, 0-based).
    pub index: u64,
    /// Proposal round the point came from (1-based).
    pub round: u64,
    /// Driver provenance: how the point was derived (`"init"`,
    /// `"neighbor(size)"`, `"mutate(2)"`, `"random"`).
    pub op: String,
    /// Per-axis ordinals of the point.
    pub ordinals: Vec<usize>,
    /// Per-axis level labels (redundant with `ordinals`, kept for
    /// human-readable records).
    pub labels: Vec<String>,
    /// Hash of the point's decoded `ExperimentSpec` — the key the result
    /// cache and the resume memo use.
    pub spec_hash: String,
    /// Objective: mean NN message latency (cycles).
    pub latency: f64,
    /// Objective: mean NN throughput (flits/cycle).
    pub throughput: f64,
    /// Objective: inference-engine gate count (32 nm).
    pub gates: f64,
    /// Scalar ranking score (lower is better).
    pub score: f64,
    /// Where this evaluation came from: `"miss"` (simulated this run),
    /// `"hit"` (all cells answered by the result cache), `"mixed"`
    /// (partial hit), or `"memo"` (replayed from a prior record while
    /// resuming).
    pub cache: String,
}

/// The structured trace of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRecord {
    /// Schema version ([`SEARCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Driver name (`"hc"`, `"evo"`, `"random"`).
    pub driver: String,
    /// Base seed of the run (feeds the proposal RNG and every cell).
    pub base_seed: u64,
    /// Evaluation budget the run was invoked with.
    pub budget: u64,
    /// Tier name (`"quick"` / `"full"`).
    pub tier: String,
    /// `git describe --always --dirty` of the producing checkout.
    pub git_describe: String,
    /// Hash of the search-space definition (axes and levels) — a resumed
    /// run refuses to replay a record from a different space.
    pub space_hash: String,
    /// The axes: `(name, level labels)` in ordinal order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Every evaluated point, in evaluation order.
    pub points: Vec<SearchPointRecord>,
    /// Indices into `points` forming the Pareto front (minimize latency,
    /// maximize throughput, minimize gates), in evaluation order.
    pub pareto: Vec<u64>,
}

impl SearchRecord {
    /// Serializes the record as pretty-printed JSON. Floats use Rust's
    /// shortest round-trip form, so a parse → reserialize cycle is
    /// byte-stable (which is what makes resume replay exact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"driver\": {},", json_str(&self.driver));
        let _ = writeln!(s, "  \"base_seed\": {},", self.base_seed);
        let _ = writeln!(s, "  \"budget\": {},", self.budget);
        let _ = writeln!(s, "  \"tier\": {},", json_str(&self.tier));
        let _ = writeln!(s, "  \"git_describe\": {},", json_str(&self.git_describe));
        let _ = writeln!(s, "  \"space_hash\": {},", json_str(&self.space_hash));
        s.push_str("  \"axes\": [\n");
        for (i, (name, levels)) in self.axes.iter().enumerate() {
            let levels: Vec<String> = levels.iter().map(|l| json_str(l)).collect();
            let _ = write!(
                s,
                "    {{\"name\": {}, \"levels\": [{}]}}",
                json_str(name),
                levels.join(", ")
            );
            s.push_str(if i + 1 < self.axes.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let ordinals: Vec<String> = p.ordinals.iter().map(usize::to_string).collect();
            let labels: Vec<String> = p.labels.iter().map(|l| json_str(l)).collect();
            let _ = write!(
                s,
                "    {{\"index\": {}, \"round\": {}, \"op\": {}, \"ordinals\": [{}], \"labels\": [{}], \"spec_hash\": {}, \"latency\": {}, \"throughput\": {}, \"gates\": {}, \"score\": {}, \"cache\": {}}}",
                p.index,
                p.round,
                json_str(&p.op),
                ordinals.join(", "),
                labels.join(", "),
                json_str(&p.spec_hash),
                json_num(p.latency),
                json_num(p.throughput),
                json_num(p.gates),
                json_num(p.score),
                json_str(&p.cache),
            );
            s.push_str(if i + 1 < self.points.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        let pareto: Vec<String> = self.pareto.iter().map(u64::to_string).collect();
        let _ = writeln!(s, "  \"pareto\": [{}]", pareto.join(", "));
        s.push_str("}\n");
        s
    }

    /// Parses a record back from JSON (the resume direction).
    ///
    /// # Errors
    ///
    /// Malformed JSON and missing or mistyped fields are reported; a
    /// version skew is reported explicitly so the caller can choose to
    /// start fresh.
    pub fn from_json(text: &str) -> Result<SearchRecord, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object()?;
        let get = |key: &str| obj.get(key).ok_or(format!("missing '{key}'"));
        let schema_version = get("schema_version")?.as_u64()?;
        if schema_version != SEARCH_SCHEMA_VERSION {
            return Err(format!(
                "search record schema v{schema_version} (this build reads v{SEARCH_SCHEMA_VERSION})"
            ));
        }
        let mut axes = Vec::new();
        for a in get("axes")?.as_array()? {
            let ao = a.as_object()?;
            let name = ao.get("name").ok_or("missing axis 'name'")?.as_str()?;
            let levels = ao
                .get("levels")
                .ok_or("missing axis 'levels'")?
                .as_array()?
                .iter()
                .map(Json::as_str)
                .collect::<Result<Vec<_>, _>>()?;
            axes.push((name, levels));
        }
        let mut points = Vec::new();
        for p in get("points")?.as_array()? {
            let po = p.as_object()?;
            let pget = |key: &str| po.get(key).ok_or(format!("missing point '{key}'"));
            points.push(SearchPointRecord {
                index: pget("index")?.as_u64()?,
                round: pget("round")?.as_u64()?,
                op: pget("op")?.as_str()?,
                ordinals: pget("ordinals")?
                    .as_array()?
                    .iter()
                    .map(|v| v.as_u64().map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?,
                labels: pget("labels")?
                    .as_array()?
                    .iter()
                    .map(Json::as_str)
                    .collect::<Result<Vec<_>, _>>()?,
                spec_hash: pget("spec_hash")?.as_str()?,
                latency: pget("latency")?.as_f64()?,
                throughput: pget("throughput")?.as_f64()?,
                gates: pget("gates")?.as_f64()?,
                score: pget("score")?.as_f64()?,
                cache: pget("cache")?.as_str()?,
            });
        }
        Ok(SearchRecord {
            schema_version,
            driver: get("driver")?.as_str()?,
            base_seed: get("base_seed")?.as_u64()?,
            budget: get("budget")?.as_u64()?,
            tier: get("tier")?.as_str()?,
            git_describe: get("git_describe")?.as_str()?,
            space_hash: get("space_hash")?.as_str()?,
            axes,
            points,
            pareto: get("pareto")?
                .as_array()?
                .iter()
                .map(Json::as_u64)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchRecord {
        SearchRecord {
            schema_version: SEARCH_SCHEMA_VERSION,
            driver: "hc".into(),
            base_seed: 42,
            budget: 8,
            tier: "quick".into(),
            git_describe: "abc1234".into(),
            space_hash: "00ff00ff00ff00ff".into(),
            axes: vec![("size".into(), vec!["4x4".into(), "6x6".into()])],
            points: vec![SearchPointRecord {
                index: 0,
                round: 1,
                op: "init".into(),
                ordinals: vec![0, 1],
                labels: vec!["4x4".into(), "mesh-wfa".into()],
                spec_hash: "0123456789abcdef".into(),
                latency: 12.125,
                throughput: 0.30000000000000004,
                gates: 150000.5,
                score: 6062575.0,
                cache: "miss".into(),
            }],
            pareto: vec![0],
        }
    }

    #[test]
    fn json_round_trips() {
        let rec = sample();
        let parsed = SearchRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn reserialization_is_byte_stable() {
        // Shortest round-trip floats mean parse → to_json reproduces the
        // exact bytes — the property resume replay rests on.
        let json = sample().to_json();
        let cycled = SearchRecord::from_json(&json).unwrap().to_json();
        assert_eq!(json, cycled);
    }

    #[test]
    fn version_skew_is_an_explicit_error() {
        let json = sample().to_json().replace(
            &format!("\"schema_version\": {SEARCH_SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = SearchRecord::from_json(&json).unwrap_err();
        assert!(err.contains("schema v999"), "got: {err}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SearchRecord::from_json("{").is_err());
        assert!(SearchRecord::from_json("{\"schema_version\": 1}").is_err());
    }
}
