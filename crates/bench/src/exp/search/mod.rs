//! # search — design-space exploration over the declarative spec
//!
//! The ML-driven-design loop the paper motivates: treat the NoC
//! configuration (fabric sizing, routing, agent hyperparameters) as a
//! searchable space and let a driver walk it, with every candidate
//! evaluated through the same declarative [`super::spec::ExperimentSpec`]
//! pipeline, job queue and content-addressed result cache the figures use
//! — so revisiting a design point costs nothing and a killed search
//! resumes with zero re-simulation.
//!
//! * [`space::SearchSpace`] — the seven tunable axes (mesh/torus/ring
//!   size, fabric × routing, VC count, buffer depth, γ, learning rate,
//!   reward formulation), their level tables, and the point →
//!   `ExperimentSpec` decoder.
//! * [`objective`] — the objective vector per point: simulated latency
//!   and throughput folded with the analytical gate cost of the point's
//!   inference engine ([`hw_cost::cost_agent_inference`]), plus the
//!   Pareto-front computation (minimize latency and gates, maximize
//!   throughput).
//! * [`drivers`] — three strategies behind one [`SearchDriver`] trait:
//!   random sampling, greedy hill climbing (the generalization of
//!   `rl_arb::greedy_climb` from feature subsets to the full space), and
//!   a (µ+λ) evolutionary driver.
//! * [`record::SearchRecord`] — the versioned JSON trace: every evaluated
//!   point with objective, cache and driver provenance, plus the Pareto
//!   indices. Byte-identical for any `--threads`.
//! * [`runner::run_search`] — the loop: propose → evaluate through the
//!   shared queue/cache → checkpoint the record atomically every round.
//!   Resume is replay: a matching prior record memoizes every recorded
//!   `spec_hash`, so the re-run reaches the kill point with zero
//!   simulated cycles and zero training epochs, then continues.
//!
//! The `repro search` registry entry wraps [`runner::run_search`] as a
//! custom figure: `repro search --quick --driver hc --budget 32` prints
//! the Pareto front and writes `search_hc.json` +
//! `search_hc_pareto.csv` into `--out-dir`.
#![deny(missing_docs)]

pub mod drivers;
pub mod objective;
pub mod record;
pub mod runner;
pub mod space;

pub use drivers::{
    driver_by_name, Evaluated, EvoDriver, HillClimbDriver, Proposal, RandomDriver, SearchDriver,
};
pub use objective::{evaluate, gate_cost, pareto_front, ObjectiveVector};
pub use record::{SearchPointRecord, SearchRecord, SEARCH_SCHEMA_VERSION};
pub use runner::{pareto_rows, run_search, SearchOutcome, PARETO_HEADERS};
pub use space::{Axis, SearchPoint, SearchSpace};

use std::fmt::Write as _;

use super::figures::CustomOutput;
use super::record::{json_num, Table};
use crate::{render_table, CliArgs};

/// The `search` figure: runs [`run_search`] with the CLI's `--driver` and
/// `--budget`, prints the Pareto front, and surfaces the trace paths.
/// Registered in [`super::figures`] as a custom figure, so it flows
/// through the same dispatch, `RunRecord` and `--cache-stats` plumbing as
/// every other entry.
///
/// # Panics
///
/// Panics on search failure (unwritable output directory); the CLI layer
/// validates `--driver` before this runs.
pub fn search_figure(args: &CliArgs) -> CustomOutput {
    let outcome = run_search(args).unwrap_or_else(|e| panic!("design-space search failed: {e}"));
    let record = &outcome.record;
    let rows = pareto_rows(record);
    let mut text = format!(
        "design-space search: driver={} budget={} tier={} seed={}\n",
        record.driver, record.budget, record.tier, record.base_seed
    );
    let mut line = format!(
        "evaluated {} point(s) in {} round(s)",
        record.points.len(),
        record.points.last().map_or(0, |p| p.round)
    );
    if outcome.memo_replays > 0 {
        let _ = write!(line, " ({} replayed from a prior record)", outcome.memo_replays);
    }
    let best = record
        .points
        .iter()
        .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal));
    if let Some(best) = best {
        let _ = write!(line, "; best score {} at {}", json_num(best.score), best.labels.join("/"));
    }
    let _ = writeln!(text, "{line}");
    text.push_str("pareto front (minimize latency & gates, maximize throughput):\n");
    text.push_str(&render_table(&PARETO_HEADERS, &rows));
    if args.cache_stats {
        text.push_str(&outcome.stats.summary());
        text.push('\n');
    }
    rl_arb::progress!("search record written to {}", outcome.record_path.display());
    rl_arb::progress!("pareto csv written to {}", outcome.csv_path.display());
    CustomOutput {
        text,
        table: Table {
            headers: PARETO_HEADERS.iter().map(|h| h.to_string()).collect(),
            rows,
        },
        cells: Vec::new(),
        backend: "synthetic",
    }
}
