//! The experiment driver: figure name in, text table + `RunRecord` out.
//!
//! [`run_figure`] resolves a figure through the [`super::figures`]
//! registry, executes its run matrix (or custom procedure), prints the
//! same text the legacy per-figure binary printed, and writes the
//! structured [`RunRecord`] JSON (plus CSV where the legacy binary wrote
//! one) into `--out-dir`. All I/O errors propagate to the caller — no
//! silently swallowed writes.
//!
//! ## Determinism
//!
//! Cells dispatch scenario-major, then seed-major, then policy-minor, and
//! [`crate::sweep::run_parallel`] returns results in submission order.
//! Per-policy seed averages therefore accumulate in increasing-seed order
//! — exactly the summation order of the historical serial loops (e.g.
//! [`crate::apu_sweep_seeds`]) — so every rendered value is bit-identical
//! to the pre-refactor binaries for any `--threads` count. The
//! `driver_equivalence` integration test pins this.

use noc_sim::{FaultPlan, Topology};
use rl_arb::{progress, ApuTrainSpec, NnPolicyArbiter, TrainRecipe, TrainSpec};

use super::artifacts::{ArtifactStore, ResolvedArtifact};
use super::backend::{apu_specs_for, backend_for, CellRecord, SpecInstance};
use super::figures::{self, FigureDef, FigureKind};
use super::record::{git_describe, RunRecord};
use super::spec::{
    ExperimentSpec, Lineup, LineupEntry, NnRecipe, ScenarioSpec, Tier, TierParams,
};
use crate::{sweep, write_csv, CliArgs, PolicySpec};

/// The collected cells of one scenario, seed-major / policy-minor.
#[derive(Debug)]
pub struct ScenarioData {
    /// Scenario label (carries the `@f<intensity>` suffix for rows a
    /// fault axis expanded).
    pub label: String,
    /// Fault intensity this row group ran under (`0.0` = fault-free).
    pub fault_intensity: f64,
    /// Hash of the generated fault plan (`None` for fault-free rows).
    pub fault_plan_hash: Option<String>,
    /// Canonical policy names, in line-up order.
    pub canonical: Vec<String>,
    /// Display policy names, in line-up order.
    pub display: Vec<String>,
    /// Seeds, in sweep order.
    pub seeds: Vec<u64>,
    /// Cells, seed-major then policy-minor.
    pub cells: Vec<CellRecord>,
}

impl ScenarioData {
    /// The cell of one `(seed index, policy index)` pair.
    pub fn cell(&self, seed_idx: usize, policy_idx: usize) -> &CellRecord {
        &self.cells[seed_idx * self.canonical.len() + policy_idx]
    }

    /// Mean of a metric over the seeds, for one policy.
    ///
    /// Sums in increasing-seed order — the exact accumulation order of the
    /// historical serial sweeps, so multi-seed figures reproduce their
    /// pre-refactor values bitwise.
    pub fn mean(&self, policy_idx: usize, metric: &str) -> f64 {
        let mut sum = 0.0;
        for seed_idx in 0..self.seeds.len() {
            sum += self.cell(seed_idx, policy_idx).metric(metric);
        }
        sum / self.seeds.len() as f64
    }

    /// [`Self::mean`] for every policy, in line-up order.
    pub fn means(&self, metric: &str) -> Vec<f64> {
        (0..self.canonical.len()).map(|p| self.mean(p, metric)).collect()
    }
}

/// The executed run matrix: one [`ScenarioData`] per scenario, in spec
/// order.
#[derive(Debug)]
pub struct MatrixData {
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioData>,
}

impl MatrixData {
    /// All cells, flattened in execution order.
    pub fn all_cells(&self) -> Vec<CellRecord> {
        self.scenarios.iter().flat_map(|s| s.cells.iter().cloned()).collect()
    }
}

/// Runs a figure end-to-end: resolve, execute, print the text report,
/// write the `RunRecord` JSON (and CSV when the figure historically wrote
/// one) into `args.out_dir`. Returns the record for in-process callers
/// (tests, future tooling).
pub fn run_figure(name: &str, args: &CliArgs) -> Result<RunRecord, String> {
    rl_arb::set_quiet(args.quiet);
    let def = figures::find(name).ok_or_else(|| {
        format!("unknown figure '{name}' (try: {})", figures::names().join(", "))
    })?;
    let tier = if args.quick { Tier::Quick } else { Tier::Full };
    let record = match &def.kind {
        FigureKind::Matrix { spec, render, csv } => {
            let spec = spec();
            let params = *spec.params(tier);
            let seeds = spec.seed_list(args.seed, tier);
            let data = run_matrix(&spec, &params, &seeds, args);
            let rendered = render(&spec, &params, &data);
            print!("{}", rendered.text);
            let record = RunRecord {
                schema_version: super::record::RUN_RECORD_SCHEMA_VERSION,
                figure: spec.figure.clone(),
                title: spec.title.clone(),
                tier: tier.as_str().into(),
                backend: backend_label(&spec),
                base_seed: args.seed,
                seeds,
                threads: args.threads as u64,
                git_describe: git_describe(),
                spec_hash: spec.hash_hex(),
                normalization: spec.normalization_policy(),
                cells: data.all_cells(),
                table: rendered.table,
            };
            if *csv {
                let headers: Vec<&str> =
                    record.table.headers.iter().map(String::as_str).collect();
                let path = write_csv(
                    args.out_dir.join(format!("{}.csv", spec.output)),
                    &headers,
                    &record.table.rows,
                )
                .map_err(|e| format!("writing {} csv: {e}", spec.output))?;
                progress!("csv written to {}", path.display());
            }
            write_record(&record, args, &spec.output)?;
            record
        }
        FigureKind::Custom(f) => {
            let out = f(args);
            print!("{}", out.text);
            let record = RunRecord {
                schema_version: super::record::RUN_RECORD_SCHEMA_VERSION,
                figure: def.name.into(),
                title: def.summary.into(),
                tier: tier.as_str().into(),
                backend: out.backend.into(),
                base_seed: args.seed,
                seeds: vec![args.seed],
                threads: args.threads as u64,
                git_describe: git_describe(),
                spec_hash: String::new(),
                normalization: None,
                cells: out.cells,
                table: out.table,
            };
            write_record(&record, args, def.legacy_bin)?;
            record
        }
    };
    Ok(record)
}

/// Entry point shared by the thin per-figure shim binaries: parse the
/// common flags (no positionals) and run one fixed figure.
pub fn shim_main(figure: &str) {
    let args = CliArgs::parse();
    if let Err(e) = run_figure(figure, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn write_record(record: &RunRecord, args: &CliArgs, basename: &str) -> Result<(), String> {
    let path = record
        .write(&args.out_dir, basename)
        .map_err(|e| format!("writing {basename} run record: {e}"))?;
    progress!("run record written to {}", path.display());
    Ok(())
}

/// The `RunRecord` backend field for a matrix spec.
fn backend_label(spec: &ExperimentSpec) -> String {
    let apu = spec.scenarios.iter().filter(|s| s.is_apu()).count();
    match apu {
        0 => "synthetic".into(),
        n if n == spec.scenarios.len() => "apu".into(),
        _ => "mixed".into(),
    }
}

/// The line-up a scenario runs (its override, or the spec default).
fn lineup_for<'a>(spec: &'a ExperimentSpec, scenario: &'a ScenarioSpec) -> &'a Lineup {
    if let ScenarioSpec::Synthetic { lineup: Some(l), .. } = scenario {
        l
    } else {
        &spec.lineup
    }
}

/// The training recipe behind a spec's shared APU NN slot — the same
/// workload set, budgets and seed the legacy inline `train_apu_agent`
/// call used, as pure data.
fn apu_recipe(benchmark: &str, params: &TierParams, seed: u64) -> TrainRecipe {
    TrainRecipe::Apu(ApuTrainSpec::tuned(
        benchmark,
        params.nn_repeats,
        params.max_cycles,
        params.apu_scale,
        seed,
    ))
}

/// The training recipe behind a synthetic scenario's NN slot (the exact
/// arguments of the legacy inline `train_synthetic_nn` call).
fn synthetic_recipe(scenario: &ScenarioSpec, params: &TierParams, seed: u64) -> TrainRecipe {
    let ScenarioSpec::Synthetic { width, height, rate, .. } = scenario else {
        panic!("synthetic NN recipe on a non-synthetic scenario")
    };
    let mut spec = TrainSpec::tuned_synthetic(*width, *rate, seed);
    spec.height = *height;
    spec.epochs = params.nn_epochs;
    spec.cycles_per_epoch = params.nn_epoch_cycles;
    TrainRecipe::Synthetic(spec)
}

/// Resolves an NN slot through the artifact store. Training failures are
/// programming or environment errors (unknown benchmark, unwritable
/// store), so they abort the run like the legacy inline panics did.
fn resolve_nn(store: &ArtifactStore, recipe: &TrainRecipe) -> (NnPolicyArbiter, String) {
    let resolved = store
        .resolve(recipe)
        .unwrap_or_else(|e| panic!("resolving NN artifact for {}: {e}", recipe.label()));
    (resolved.policy, resolved.recipe_hash)
}

/// Resolves (training only on a cold store) every NN artifact a figure
/// needs, without running its matrix — the `repro train <figure>`
/// subcommand. Returns the artifacts in resolution order.
///
/// # Errors
///
/// Unknown figures, figures whose training is inline (custom procedures),
/// and figures with no NN slot are reported, as are store failures.
pub fn train_figure(name: &str, args: &CliArgs) -> Result<Vec<ResolvedArtifact>, String> {
    rl_arb::set_quiet(args.quiet);
    let def = figures::find(name).ok_or_else(|| {
        format!("unknown figure '{name}' (try: {})", figures::names().join(", "))
    })?;
    let FigureKind::Matrix { spec, .. } = &def.kind else {
        return Err(format!(
            "figure '{name}' trains inline (custom procedure) — no artifact-backed NN slot"
        ));
    };
    let spec = spec();
    let tier = if args.quick { Tier::Quick } else { Tier::Full };
    let params = *spec.params(tier);
    let store = ArtifactStore::from_args(args);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for scenario in &spec.scenarios {
        if !lineup_for(&spec, scenario).has_nn_slot() {
            continue;
        }
        let recipe = match &spec.nn {
            Some(NnRecipe::SyntheticPerScenario) => {
                synthetic_recipe(scenario, &params, args.seed)
            }
            Some(NnRecipe::ApuBenchmark { benchmark }) => {
                apu_recipe(benchmark, &params, args.seed)
            }
            None => {
                return Err(format!(
                    "figure '{name}' has an NN slot but no training recipe"
                ))
            }
        };
        if seen.insert(recipe.hash_hex()) {
            out.push(store.resolve(&recipe)?);
        }
    }
    if out.is_empty() {
        return Err(format!("figure '{name}' has no NN slot to train"));
    }
    Ok(out)
}

/// Executes a spec's full run matrix.
///
/// Scenarios run in order; within a scenario all `seeds × policies` cells
/// are independent and dispatch through [`sweep::run_parallel`] on
/// `args.threads` workers. NN slots resolve through the artifact store on
/// the main thread — training (cold store only) uses the same arguments,
/// seed and call order as the legacy binaries, and a warm store rebuilds
/// a bit-identical policy with zero training steps.
pub fn run_matrix(
    spec: &ExperimentSpec,
    params: &TierParams,
    seeds: &[u64],
    args: &CliArgs,
) -> MatrixData {
    let store = ArtifactStore::from_args(args);
    let needs_nn = spec
        .scenarios
        .iter()
        .any(|s| lineup_for(spec, s).has_nn_slot());
    // The APU recipe trains one network shared by every scenario.
    let shared_nn: Option<(NnPolicyArbiter, String)> = match &spec.nn {
        Some(NnRecipe::ApuBenchmark { benchmark }) if needs_nn => {
            progress!(
                "resolving NN policy for {benchmark} (the paper derives its policy from {benchmark} training) ..."
            );
            Some(resolve_nn(&store, &apu_recipe(benchmark, params, args.seed)))
        }
        _ => None,
    };

    let mut scenarios = Vec::with_capacity(spec.scenarios.len());
    for scenario in &spec.scenarios {
        let lineup = lineup_for(spec, scenario);
        let nn: Option<(NnPolicyArbiter, String)> = if lineup.has_nn_slot() {
            match &spec.nn {
                Some(NnRecipe::SyntheticPerScenario) => {
                    let ScenarioSpec::Synthetic { label, rate, .. } = scenario else {
                        panic!("synthetic NN recipe on a non-synthetic scenario")
                    };
                    progress!("resolving NN policy for {label} at rate {rate} ...");
                    Some(resolve_nn(&store, &synthetic_recipe(scenario, params, args.seed)))
                }
                Some(NnRecipe::ApuBenchmark { .. }) => shared_nn.clone(),
                None => panic!("line-up has an NN slot but the spec has no NN recipe"),
            }
        } else {
            None
        };
        // (canonical name, display name, buildable recipe, artifact hash)
        // per slot.
        let policies: Vec<(String, String, PolicySpec, Option<String>)> = lineup
            .entries
            .iter()
            .map(|e| match e {
                LineupEntry::Policy(kind) => (
                    kind.as_str().to_string(),
                    kind.display_name().to_string(),
                    PolicySpec::builtin(kind.display_name(), *kind),
                    None,
                ),
                LineupEntry::NnSlot => {
                    let (policy, hash) =
                        nn.clone().expect("NN recipe produced no network");
                    // `--inference` selects the NN datapath at run time; it
                    // is not part of the training recipe, so the artifact
                    // hash (and the trained weights) are mode-invariant.
                    let policy = policy.with_inference(args.inference);
                    ("nn".into(), "NN".into(), PolicySpec::nn("NN", policy), Some(hash))
                }
            })
            .collect();
        let backend = backend_for(scenario);
        // With no fault axis this is a single fault-free pass — the
        // historical dispatch, cell for cell.
        let intensities: Vec<f64> = match &spec.faults {
            Some(axis) => axis.intensities.clone(),
            None => vec![0.0],
        };
        for &intensity in &intensities {
            // Plans are generated here on the main thread, so every
            // worker-thread cell of this row group shares one plan and the
            // result is thread-count-invariant. The plan seed depends only
            // on the base seed, scenario and intensity — not on the
            // per-cell sweep seed — so all seeds and policies of a row see
            // the same fault environment.
            let plan: Option<FaultPlan> = if intensity > 0.0 {
                let plan_seed = args.seed ^ super::spec::fnv1a64(
                    format!("{}@f{intensity:.2}", scenario.label()).as_bytes(),
                );
                let plan = FaultPlan::generate(
                    plan_seed,
                    intensity,
                    &fault_topology(scenario),
                    fault_horizon(scenario, params),
                );
                Some(plan)
            } else {
                None
            };
            let label = match plan {
                Some(_) => format!("{}@f{intensity:.2}", scenario.label()),
                None => scenario.label(),
            };
            progress!(
                "running {} under {} policies x {} seed(s) ...",
                label,
                policies.len(),
                seeds.len()
            );
            if matches!(scenario, ScenarioSpec::ApuMix { .. }) {
                let specs = apu_specs_for(scenario, args.seed, params.apu_scale);
                let apps: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                progress!("  quadrants: {apps:?}");
            }
            let jobs: Vec<(u64, usize)> = seeds
                .iter()
                .flat_map(|&seed| (0..policies.len()).map(move |p| (seed, p)))
                .collect();
            let cells = sweep::run_parallel(jobs, args.threads, |(seed, p)| {
                backend.run(&SpecInstance {
                    scenario,
                    label: &label,
                    policy_name: &policies[p].0,
                    policy: &policies[p].2,
                    seed,
                    base_seed: args.seed,
                    params,
                    artifact: policies[p].3.as_deref(),
                    faults: plan.as_ref(),
                })
            });
            scenarios.push(ScenarioData {
                label,
                fault_intensity: intensity,
                fault_plan_hash: plan.as_ref().map(FaultPlan::hash_hex),
                canonical: policies.iter().map(|p| p.0.clone()).collect(),
                display: policies.iter().map(|p| p.1.clone()).collect(),
                seeds: seeds.to_vec(),
                cells,
            });
        }
    }
    MatrixData { scenarios }
}

/// The router graph a scenario's fault plan is generated against (fault
/// targets must name real routers/ports/links of the simulated topology,
/// so the plan is drawn on the scenario's own [`super::spec::TopoSpec`]).
fn fault_topology(scenario: &ScenarioSpec) -> Topology {
    match scenario {
        ScenarioSpec::Synthetic { width, height, topo, .. } => {
            topo.build(*width, *height).expect("valid topology")
        }
        _ => apu_sim::ApuTopology::build().clone_topology(),
    }
}

/// The cycle horizon fault onsets/durations are scaled to.
fn fault_horizon(scenario: &ScenarioSpec, params: &TierParams) -> u64 {
    if scenario.is_apu() {
        params.max_cycles
    } else {
        params.warmup + params.measure
    }
}

/// Looks up a figure definition (used by tests; `run_figure` resolves
/// internally).
pub fn resolve(name: &str) -> Option<&'static FigureDef> {
    figures::find(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_an_error() {
        let err = run_figure("fig99", &CliArgs::default()).unwrap_err();
        assert!(err.contains("unknown figure"), "got: {err}");
        assert!(err.contains("fig05"), "error should list known figures: {err}");
    }

    #[test]
    fn legacy_bin_names_resolve_to_the_same_figures() {
        for def in figures::all() {
            let by_name = figures::find(def.name).expect("canonical name resolves");
            let by_bin = figures::find(def.legacy_bin).expect("legacy bin name resolves");
            assert!(std::ptr::eq(by_name, by_bin), "{} aliases diverge", def.name);
        }
    }

    #[test]
    fn backend_labels() {
        use super::super::figures;
        let spec_of = |name: &str| match &figures::find(name).unwrap().kind {
            FigureKind::Matrix { spec, .. } => spec(),
            FigureKind::Custom(_) => panic!("{name} is not a matrix figure"),
        };
        assert_eq!(backend_label(&spec_of("fig05")), "synthetic");
        assert_eq!(backend_label(&spec_of("fig09")), "apu");
        assert_eq!(backend_label(&spec_of("extended_policies")), "mixed");
    }
}
