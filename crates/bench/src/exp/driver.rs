//! The experiment driver: figure name in, text table + `RunRecord` out.
//!
//! [`run_figure`] (and the batched [`run_figures_queued`] behind
//! `repro queue`) resolves figures through the [`super::figures`]
//! registry, plans every run-matrix cell as a job in a
//! [`super::queue::JobQueue`] (training jobs ahead of the simulation
//! cells that depend on them), probes the content-addressed
//! [`super::cache::ResultCache`] so previously-computed cells never
//! re-simulate, drains the queue, then prints the same text the legacy
//! per-figure binary printed and writes the structured [`RunRecord`] JSON
//! (plus CSV where the legacy binary wrote one) into `--out-dir`. All I/O
//! errors propagate to the caller — no silently swallowed writes.
//!
//! ## Determinism
//!
//! A cell's value is a pure function of its [`super::cache::CellJob`]
//! identity, and assembly collects results by job id — scenario-major,
//! then seed-major, then policy-minor. Per-policy seed averages therefore
//! accumulate in increasing-seed order — exactly the summation order of
//! the historical serial loops (e.g. [`crate::apu_sweep_seeds`]) — so
//! every rendered value is bit-identical to the pre-refactor binaries for
//! any `--threads` count, and cache hits are byte-identical to fresh
//! simulations (modulo the `cache` provenance field). The
//! `driver_equivalence` and `result_cache` integration tests pin this.

use std::collections::HashMap;

use noc_arbiters::PolicyKind;
use noc_sim::{FaultPlan, Topology};
use rl_arb::{progress, ApuTrainSpec, NnPolicyArbiter, TrainRecipe, TrainSpec};

use super::artifacts::{ArtifactStore, ResolvedArtifact};
use super::backend::{apu_specs_for, backend_for, CellRecord, SpecInstance};
use super::cache::{CacheStats, CellJob, ResultCache};
use super::figures::{self, FigureDef, FigureKind};
use super::queue::{JobId, JobQueue};
use super::record::{git_describe, RunRecord};
use super::spec::{
    ExperimentSpec, Lineup, LineupEntry, NnRecipe, ScenarioSpec, Tier, TierParams,
};
use crate::{write_csv, CliArgs, PolicySpec};

/// The collected cells of one scenario, seed-major / policy-minor.
#[derive(Debug)]
pub struct ScenarioData {
    /// Scenario label (carries the `@f<intensity>` suffix for rows a
    /// fault axis expanded).
    pub label: String,
    /// Fault intensity this row group ran under (`0.0` = fault-free).
    pub fault_intensity: f64,
    /// Hash of the generated fault plan (`None` for fault-free rows).
    pub fault_plan_hash: Option<String>,
    /// Canonical policy names, in line-up order.
    pub canonical: Vec<String>,
    /// Display policy names, in line-up order.
    pub display: Vec<String>,
    /// Seeds, in sweep order.
    pub seeds: Vec<u64>,
    /// Cells, seed-major then policy-minor.
    pub cells: Vec<CellRecord>,
}

impl ScenarioData {
    /// The cell of one `(seed index, policy index)` pair.
    pub fn cell(&self, seed_idx: usize, policy_idx: usize) -> &CellRecord {
        &self.cells[seed_idx * self.canonical.len() + policy_idx]
    }

    /// Mean of a metric over the seeds, for one policy.
    ///
    /// Sums in increasing-seed order — the exact accumulation order of the
    /// historical serial sweeps, so multi-seed figures reproduce their
    /// pre-refactor values bitwise.
    pub fn mean(&self, policy_idx: usize, metric: &str) -> f64 {
        let mut sum = 0.0;
        for seed_idx in 0..self.seeds.len() {
            sum += self.cell(seed_idx, policy_idx).metric(metric);
        }
        sum / self.seeds.len() as f64
    }

    /// [`Self::mean`] for every policy, in line-up order.
    pub fn means(&self, metric: &str) -> Vec<f64> {
        (0..self.canonical.len()).map(|p| self.mean(p, metric)).collect()
    }
}

/// The executed run matrix: one [`ScenarioData`] per scenario, in spec
/// order.
#[derive(Debug)]
pub struct MatrixData {
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioData>,
}

impl MatrixData {
    /// All cells, flattened in execution order.
    pub fn all_cells(&self) -> Vec<CellRecord> {
        self.scenarios.iter().flat_map(|s| s.cells.iter().cloned()).collect()
    }
}

/// Runs a figure end-to-end: resolve, execute through the shared
/// queue + result cache, print the text report, write the `RunRecord`
/// JSON (and CSV when the figure historically wrote one) into
/// `args.out_dir`. Returns the record for in-process callers (tests,
/// future tooling).
pub fn run_figure(name: &str, args: &CliArgs) -> Result<RunRecord, String> {
    let mut records = run_figures_queued(&[name], args)?;
    Ok(records.pop().expect("one figure in, one record out"))
}

/// Runs several figures through one shared job queue and result cache —
/// the `repro queue` subcommand (and, with one name, `repro <figure>`).
///
/// All matrix figures are planned together before anything runs:
/// identical cells across figures collapse into one queued job (fig09 and
/// fig10 share their entire sweep), training jobs are enqueued once per
/// distinct recipe with the dependent cells behind them, and cells
/// already in the result cache are not queued at all. The queue then
/// drains once, and each figure renders, prints and writes its
/// `RunRecord` in list order; custom figures run inline at their list
/// position. With `--cache-stats` a final summary line reports
/// cells / hits / misses / simulated cycles.
pub fn run_figures_queued(names: &[&str], args: &CliArgs) -> Result<Vec<RunRecord>, String> {
    rl_arb::set_quiet(args.quiet);
    let tier = if args.quick { Tier::Quick } else { Tier::Full };
    // Resolve every name before any work, so one typo fails the whole
    // batch fast.
    let defs: Vec<&FigureDef> = names
        .iter()
        .map(|name| {
            figures::find(name).ok_or_else(|| {
                format!("unknown figure '{name}' (try: {})", figures::names().join(", "))
            })
        })
        .collect::<Result<_, _>>()?;

    let cache = ResultCache::from_args(args);
    let sim_before = noc_sim::simulated_cycles();
    let mut batch = MatrixBatch::new(args, Some(&cache));
    // Plan phase: matrix figures share the queue; custom figures (which
    // train and simulate inline) run during assembly instead.
    type PlannedFigure = (Box<ExperimentSpec>, TierParams, Vec<u64>, usize);
    let planned: Vec<Option<PlannedFigure>> = defs
        .iter()
        .map(|def| match &def.kind {
            FigureKind::Matrix { spec, .. } => {
                let spec = spec();
                let params = *spec.params(tier);
                let seeds = spec.seed_list(args.seed, tier);
                let idx = batch.add_spec(&spec, &params, &seeds);
                Some((Box::new(spec), params, seeds, idx))
            }
            FigureKind::Custom(_) => None,
        })
        .collect();
    let drained = batch.drain();

    // Assembly phase, in list order.
    let mut records = Vec::with_capacity(defs.len());
    for (def, plan) in defs.iter().zip(planned) {
        let record = match (&def.kind, plan) {
            (FigureKind::Matrix { render, csv, .. }, Some((spec, params, seeds, idx))) => {
                let data = drained.matrix(idx);
                let rendered = render(&spec, &params, &data);
                print!("{}", rendered.text);
                let record = RunRecord {
                    schema_version: super::record::RUN_RECORD_SCHEMA_VERSION,
                    figure: spec.figure.clone(),
                    title: spec.title.clone(),
                    tier: tier.as_str().into(),
                    backend: backend_label(&spec),
                    base_seed: args.seed,
                    seeds,
                    threads: args.threads as u64,
                    git_describe: git_describe(),
                    spec_hash: spec.hash_hex(),
                    normalization: spec.normalization_policy(),
                    cells: data.all_cells(),
                    table: rendered.table,
                };
                if *csv {
                    let headers: Vec<&str> =
                        record.table.headers.iter().map(String::as_str).collect();
                    let path = write_csv(
                        args.out_dir.join(format!("{}.csv", spec.output)),
                        &headers,
                        &record.table.rows,
                    )
                    .map_err(|e| format!("writing {} csv: {e}", spec.output))?;
                    progress!("csv written to {}", path.display());
                }
                write_record(&record, args, &spec.output)?;
                record
            }
            (FigureKind::Custom(f), None) => {
                let out = f(args);
                print!("{}", out.text);
                let record = RunRecord {
                    schema_version: super::record::RUN_RECORD_SCHEMA_VERSION,
                    figure: def.name.into(),
                    title: def.summary.into(),
                    tier: tier.as_str().into(),
                    backend: out.backend.into(),
                    base_seed: args.seed,
                    seeds: vec![args.seed],
                    threads: args.threads as u64,
                    git_describe: git_describe(),
                    spec_hash: custom_spec_hash(def),
                    normalization: None,
                    cells: out.cells,
                    table: out.table,
                };
                write_record(&record, args, def.legacy_bin)?;
                record
            }
            _ => unreachable!("plan kind follows def kind"),
        };
        records.push(record);
    }
    let mut stats = drained.stats;
    stats.simulated_cycles = noc_sim::simulated_cycles() - sim_before;
    if args.cache_stats {
        println!("{}", stats.summary());
    }
    Ok(records)
}

/// Content hash of a custom figure's identity. Custom figures have no
/// `ExperimentSpec` to hash, but every `RunRecord` must carry a real,
/// non-empty `spec_hash`, so they hash their registry identity instead.
fn custom_spec_hash(def: &FigureDef) -> String {
    format!(
        "{:016x}",
        super::spec::fnv1a64(format!("custom:{}:{}", def.name, def.summary).as_bytes())
    )
}

/// Entry point shared by the thin per-figure shim binaries: parse the
/// common flags (no positionals) and run one fixed figure.
pub fn shim_main(figure: &str) {
    let args = CliArgs::parse();
    if let Err(e) = run_figure(figure, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn write_record(record: &RunRecord, args: &CliArgs, basename: &str) -> Result<(), String> {
    let path = record
        .write(&args.out_dir, basename)
        .map_err(|e| format!("writing {basename} run record: {e}"))?;
    progress!("run record written to {}", path.display());
    Ok(())
}

/// The `RunRecord` backend field for a matrix spec.
fn backend_label(spec: &ExperimentSpec) -> String {
    let apu = spec.scenarios.iter().filter(|s| s.is_apu()).count();
    match apu {
        0 => "synthetic".into(),
        n if n == spec.scenarios.len() => "apu".into(),
        _ => "mixed".into(),
    }
}

/// The line-up a scenario runs (its override, or the spec default).
fn lineup_for<'a>(spec: &'a ExperimentSpec, scenario: &'a ScenarioSpec) -> &'a Lineup {
    if let ScenarioSpec::Synthetic { lineup: Some(l), .. } = scenario {
        l
    } else {
        &spec.lineup
    }
}

/// The training recipe behind a spec's shared APU NN slot — the same
/// workload set, budgets and seed the legacy inline `train_apu_agent`
/// call used, as pure data.
fn apu_recipe(benchmark: &str, params: &TierParams, seed: u64) -> TrainRecipe {
    TrainRecipe::Apu(ApuTrainSpec::tuned(
        benchmark,
        params.nn_repeats,
        params.max_cycles,
        params.apu_scale,
        seed,
    ))
}

/// The training recipe behind a synthetic scenario's NN slot (the exact
/// arguments of the legacy inline `train_synthetic_nn` call).
fn synthetic_recipe(scenario: &ScenarioSpec, params: &TierParams, seed: u64) -> TrainRecipe {
    let ScenarioSpec::Synthetic { width, height, rate, noc, .. } = scenario else {
        panic!("synthetic NN recipe on a non-synthetic scenario")
    };
    let mut spec = TrainSpec::tuned_synthetic(*width, *rate, seed);
    spec.height = *height;
    spec.epochs = params.nn_epochs;
    spec.cycles_per_epoch = params.nn_epoch_cycles;
    // The encoder is sized `ports × vnets × features`, so training must
    // see the same vnet count the evaluation fabric runs with.
    spec.vnets = noc.map(|n| n.vnets);
    TrainRecipe::Synthetic(spec)
}

/// The design-space search's recipe: [`synthetic_recipe`] with the
/// searched agent hyperparameters overriding the tuned defaults.
fn synthetic_tuned_recipe(
    scenario: &ScenarioSpec,
    params: &TierParams,
    seed: u64,
    gamma_pct: u8,
    lr_e4: u32,
    reward: rl_arb::RewardKind,
) -> TrainRecipe {
    let TrainRecipe::Synthetic(mut spec) = synthetic_recipe(scenario, params, seed) else {
        unreachable!("synthetic_recipe returns a synthetic recipe")
    };
    spec.agent.gamma = f64::from(gamma_pct) / 100.0;
    spec.agent.lr = f64::from(lr_e4) / 1e4;
    spec.agent.reward = reward;
    TrainRecipe::Synthetic(spec)
}

/// Resolves an NN slot through the artifact store. Training failures are
/// programming or environment errors (unknown benchmark, unwritable
/// store), so they abort the run like the legacy inline panics did.
fn resolve_nn(store: &ArtifactStore, recipe: &TrainRecipe) -> (NnPolicyArbiter, String) {
    let resolved = store
        .resolve(recipe)
        .unwrap_or_else(|e| panic!("resolving NN artifact for {}: {e}", recipe.label()));
    (resolved.policy, resolved.recipe_hash)
}

/// Resolves (training only on a cold store) every NN artifact a figure
/// needs, without running its matrix — the `repro train <figure>`
/// subcommand. Returns the artifacts in resolution order.
///
/// # Errors
///
/// Unknown figures, figures whose training is inline (custom procedures),
/// and figures with no NN slot are reported, as are store failures.
pub fn train_figure(name: &str, args: &CliArgs) -> Result<Vec<ResolvedArtifact>, String> {
    rl_arb::set_quiet(args.quiet);
    let def = figures::find(name).ok_or_else(|| {
        format!("unknown figure '{name}' (try: {})", figures::names().join(", "))
    })?;
    let FigureKind::Matrix { spec, .. } = &def.kind else {
        return Err(format!(
            "figure '{name}' trains inline (custom procedure) — no artifact-backed NN slot"
        ));
    };
    let spec = spec();
    let tier = if args.quick { Tier::Quick } else { Tier::Full };
    let params = *spec.params(tier);
    let store = ArtifactStore::from_args(args);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for scenario in &spec.scenarios {
        if !lineup_for(&spec, scenario).has_nn_slot() {
            continue;
        }
        let recipe = match &spec.nn {
            Some(NnRecipe::SyntheticPerScenario) => {
                synthetic_recipe(scenario, &params, args.seed)
            }
            Some(NnRecipe::ApuBenchmark { benchmark }) => {
                apu_recipe(benchmark, &params, args.seed)
            }
            Some(NnRecipe::SyntheticTuned { gamma_pct, lr_e4, reward }) => {
                synthetic_tuned_recipe(scenario, &params, args.seed, *gamma_pct, *lr_e4, *reward)
            }
            None => {
                return Err(format!(
                    "figure '{name}' has an NN slot but no training recipe"
                ))
            }
        };
        if seen.insert(recipe.hash_hex()) {
            out.push(store.resolve(&recipe)?);
        }
    }
    if out.is_empty() {
        return Err(format!("figure '{name}' has no NN slot to train"));
    }
    Ok(out)
}

/// Priority of NN-training jobs: trains dispatch ahead of independent
/// cells so the longest-running work starts first.
const TRAIN_PRIORITY: i64 = 100;
/// Priority of simulation-cell jobs.
const CELL_PRIORITY: i64 = 0;

/// How one line-up slot's policy is built inside a worker.
#[derive(Debug, Clone)]
enum CellPolicy {
    /// A registry policy.
    Builtin(PolicyKind),
    /// The frozen NN policy resolved from the artifact store. Cell jobs
    /// depend on an [`ExpJob::Train`] job for the same recipe, so by the
    /// time a worker resolves it the checkpoint is warm and the load is
    /// bit-identical to the freshly trained network.
    Nn(Box<TrainRecipe>),
    /// A self-healing slot: the artifact warm-starts an online-learning
    /// arbiter (`online`) and/or attaches a learned per-VC buffer
    /// controller (`vc_ctl`). Shares the frozen slot's Train dependency.
    SelfHeal {
        recipe: Box<TrainRecipe>,
        online: bool,
        vc_ctl: bool,
    },
}

impl CellPolicy {
    /// The training recipe this slot resolves through, if any.
    fn recipe(&self) -> Option<&TrainRecipe> {
        match self {
            CellPolicy::Builtin(_) => None,
            CellPolicy::Nn(r) | CellPolicy::SelfHeal { recipe: r, .. } => Some(r),
        }
    }
}

/// One unit of work in the experiment queue.
#[derive(Debug)]
enum ExpJob {
    /// Resolve (training only on a cold store, honoring `--retrain`) one
    /// NN artifact.
    Train(Box<TrainRecipe>),
    /// Simulate one cell.
    Cell(Box<CellRun>),
}

/// Payload of a cell job: the cell's identity plus the materials needed
/// to run it.
#[derive(Debug)]
struct CellRun {
    job: CellJob,
    build: CellPolicy,
    plan: Option<FaultPlan>,
}

/// Result of one queue job.
#[derive(Debug, Clone)]
enum ExpOut {
    /// A train job completed; the artifact is now warm in the store.
    Trained,
    /// A simulated cell.
    Cell(CellRecord),
}

/// Runs one queue job inside a worker thread.
fn execute(store: &ArtifactStore, job: ExpJob) -> ExpOut {
    match job {
        ExpJob::Train(recipe) => {
            resolve_nn(store, &recipe);
            ExpOut::Trained
        }
        ExpJob::Cell(run) => {
            let policy = match &run.build {
                CellPolicy::Builtin(kind) => PolicySpec::builtin(kind.display_name(), *kind),
                CellPolicy::Nn(recipe) => {
                    // Load through a never-retraining view of the store:
                    // only the Train dependency honors `--retrain`, so a
                    // retrain run still trains each recipe exactly once.
                    let loader = ArtifactStore::new(store.dir(), false);
                    let (policy, _) = resolve_nn(&loader, recipe);
                    // `--inference` selects the NN datapath at run time;
                    // it is not part of the training recipe, so the
                    // artifact hash (and the trained weights) are
                    // mode-invariant.
                    PolicySpec::nn("NN", policy.with_inference(run.job.inference))
                }
                CellPolicy::SelfHeal { recipe, online, vc_ctl } => {
                    let loader = ArtifactStore::new(store.dir(), false);
                    let (frozen, _) = resolve_nn(&loader, recipe);
                    let mut spec = if *online {
                        // Warm-start online learning from the trained
                        // artifact. The per-job seed re-keys exploration
                        // and replay sampling inside `PolicySpec::build`.
                        let cfg = rl_arb::AgentConfig::tuned_online(run.job.seed);
                        let proto = rl_arb::OnlinePolicy::new(
                            frozen.network().clone(),
                            frozen.encoder().clone(),
                            cfg,
                        );
                        PolicySpec::nn_online("NN-online", proto)
                    } else {
                        PolicySpec::nn("NN", frozen.with_inference(run.job.inference))
                    };
                    if *vc_ctl {
                        spec = spec.with_vc_ctl(crate::VcCtlConfig::default());
                    }
                    spec
                }
            };
            let backend = backend_for(&run.job.scenario);
            ExpOut::Cell(backend.run(&SpecInstance {
                scenario: &run.job.scenario,
                label: &run.job.label,
                policy_name: &run.job.policy,
                policy: &policy,
                seed: run.job.seed,
                base_seed: run.job.base_seed,
                params: &run.job.params,
                artifact: run.job.artifact.as_deref(),
                faults: run.plan.as_ref(),
            }))
        }
    }
}

/// One planned row group (scenario × fault intensity) of a run matrix.
#[derive(Debug)]
struct PlannedRow {
    scenario: ScenarioSpec,
    label: String,
    intensity: f64,
    plan: Option<FaultPlan>,
    slots: Vec<PlannedSlot>,
}

/// One line-up slot of a planned row.
#[derive(Debug, Clone)]
struct PlannedSlot {
    canonical: String,
    display: String,
    build: CellPolicy,
    artifact: Option<String>,
}

/// Expands a spec into its planned rows — pure planning, no training and
/// no simulation. NN slots carry their training recipe; the recipe hash
/// *is* the artifact name and needs no training to compute, which is what
/// lets a fully warm cache answer a figure with zero work.
fn plan_rows(spec: &ExperimentSpec, params: &TierParams, args: &CliArgs) -> Vec<PlannedRow> {
    let mut rows = Vec::new();
    for scenario in &spec.scenarios {
        let lineup = lineup_for(spec, scenario);
        let nn_recipe: Option<TrainRecipe> = if lineup.has_nn_slot() {
            Some(match &spec.nn {
                Some(NnRecipe::SyntheticPerScenario) => {
                    synthetic_recipe(scenario, params, args.seed)
                }
                // The APU recipe trains one network shared by every
                // scenario (same recipe → same hash → one Train job).
                Some(NnRecipe::ApuBenchmark { benchmark }) => {
                    apu_recipe(benchmark, params, args.seed)
                }
                Some(NnRecipe::SyntheticTuned { gamma_pct, lr_e4, reward }) => {
                    synthetic_tuned_recipe(
                        scenario, params, args.seed, *gamma_pct, *lr_e4, *reward,
                    )
                }
                None => panic!("line-up has an NN slot but the spec has no NN recipe"),
            })
        } else {
            None
        };
        let nn_hash = nn_recipe.as_ref().map(TrainRecipe::hash_hex);
        let slots: Vec<PlannedSlot> = lineup
            .entries
            .iter()
            .map(|e| match e {
                LineupEntry::Policy(kind) => PlannedSlot {
                    canonical: kind.as_str().to_string(),
                    display: kind.display_name().to_string(),
                    build: CellPolicy::Builtin(*kind),
                    artifact: None,
                },
                LineupEntry::NnSlot => PlannedSlot {
                    canonical: "nn".into(),
                    display: "NN".into(),
                    build: CellPolicy::Nn(Box::new(
                        nn_recipe.clone().expect("NN slot implies a recipe"),
                    )),
                    artifact: nn_hash.clone(),
                },
                LineupEntry::SelfHeal { online, vc_ctl } => PlannedSlot {
                    canonical: e.canonical_name().into(),
                    display: e.display_name().into(),
                    build: CellPolicy::SelfHeal {
                        recipe: Box::new(
                            nn_recipe.clone().expect("self-heal slot implies a recipe"),
                        ),
                        online: *online,
                        vc_ctl: *vc_ctl,
                    },
                    artifact: nn_hash.clone(),
                },
            })
            .collect();
        // With no fault axis this is a single fault-free pass — the
        // historical dispatch, cell for cell.
        let intensities: Vec<f64> = match &spec.faults {
            Some(axis) => axis.intensities.clone(),
            None => vec![0.0],
        };
        let quiet_tail = spec.faults.as_ref().map_or(0.0, |a| a.quiet_tail);
        let post_warmup = spec.faults.as_ref().is_some_and(|a| a.post_warmup);
        for &intensity in &intensities {
            // Plans are generated here on the main thread, so every
            // worker-thread cell of this row group shares one plan and the
            // result is thread-count-invariant. The plan seed depends only
            // on the base seed, scenario and intensity — not on the
            // per-cell sweep seed — so all seeds and policies of a row see
            // the same fault environment.
            let plan: Option<FaultPlan> = if intensity > 0.0 {
                let plan_seed = args.seed ^ super::spec::fnv1a64(
                    format!("{}@f{intensity:.2}", scenario.label()).as_bytes(),
                );
                // A positive quiet tail shortens the plan horizon so all
                // events end before the window does; `post_warmup` then
                // pushes onsets past the warm-up so episodes open against
                // a converged latency baseline (see `FaultAxis`).
                let warmup = if post_warmup && !scenario.is_apu() { params.warmup } else { 0 };
                let horizon = fault_horizon(scenario, params) - warmup;
                let horizon = (horizon as f64 * (1.0 - quiet_tail.clamp(0.0, 0.9))) as u64;
                let plan = FaultPlan::generate(
                    plan_seed,
                    intensity,
                    &fault_topology(scenario),
                    horizon,
                )
                .delayed(warmup);
                Some(plan)
            } else {
                None
            };
            let label = match plan {
                Some(_) => format!("{}@f{intensity:.2}", scenario.label()),
                None => scenario.label(),
            };
            rows.push(PlannedRow {
                scenario: scenario.clone(),
                label,
                intensity,
                plan,
                slots: slots.clone(),
            });
        }
    }
    rows
}

/// Where one assembled cell comes from.
#[derive(Debug)]
enum Source {
    /// Loaded from the result cache.
    Hit(Box<CellRecord>),
    /// Produced by a queued job (possibly shared with other figures in
    /// the batch).
    Job(JobId),
}

/// One spec's planned matrix inside a batch: its rows plus, per cell (in
/// seed-major, policy-minor order), the content hash (when a cache is
/// active) and the cell's source.
#[derive(Debug)]
struct SpecPlan {
    rows: Vec<PlannedRow>,
    cells: Vec<Vec<(Option<String>, Source)>>,
    seeds: Vec<u64>,
}

/// A batch of run matrices sharing one job queue, artifact store and
/// result cache — the experiment service core. Plan any number of specs,
/// [`MatrixBatch::drain`] once, then assemble each spec's [`MatrixData`].
#[derive(Debug)]
pub(crate) struct MatrixBatch<'a> {
    args: &'a CliArgs,
    cache: Option<&'a ResultCache>,
    store: ArtifactStore,
    queue: JobQueue<ExpJob>,
    /// Train job per distinct recipe hash.
    train_ids: HashMap<String, JobId>,
    /// Cell job per distinct cell hash (cross-figure dedupe).
    cell_ids: HashMap<String, JobId>,
    plans: Vec<SpecPlan>,
    stats: CacheStats,
}

impl<'a> MatrixBatch<'a> {
    pub(crate) fn new(args: &'a CliArgs, cache: Option<&'a ResultCache>) -> Self {
        MatrixBatch {
            args,
            cache,
            store: ArtifactStore::from_args(args),
            queue: JobQueue::new(),
            train_ids: HashMap::new(),
            cell_ids: HashMap::new(),
            plans: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Plans one spec's cells into the shared queue — probing the result
    /// cache first, deduping against cells other specs already queued —
    /// and returns the plan's index for assembly after the drain.
    pub(crate) fn add_spec(
        &mut self,
        spec: &ExperimentSpec,
        params: &TierParams,
        seeds: &[u64],
    ) -> usize {
        let rows = plan_rows(spec, params, self.args);
        let mut row_cells = Vec::with_capacity(rows.len());
        for row in &rows {
            let plan_hash = row.plan.as_ref().map(FaultPlan::hash_hex);
            progress!(
                "planning {} under {} policies x {} seed(s) ...",
                row.label,
                row.slots.len(),
                seeds.len()
            );
            if matches!(row.scenario, ScenarioSpec::ApuMix { .. }) {
                let specs = apu_specs_for(&row.scenario, self.args.seed, params.apu_scale);
                let apps: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                progress!("  quadrants: {apps:?}");
            }
            let mut cells = Vec::with_capacity(seeds.len() * row.slots.len());
            for &seed in seeds {
                for slot in &row.slots {
                    let job = CellJob {
                        scenario: row.scenario.clone(),
                        label: row.label.clone(),
                        policy: slot.canonical.clone(),
                        seed,
                        base_seed: self.args.seed,
                        params: *params,
                        artifact: slot.artifact.clone(),
                        fault_plan: plan_hash.clone(),
                        inference: self.args.inference,
                    };
                    let hash = self.cache.map(|_| job.hash_hex());
                    self.stats.cells += 1;
                    if let (Some(cache), Some(h)) = (self.cache, &hash) {
                        if let Some(cell) = cache.load(h) {
                            self.stats.hits += 1;
                            cells.push((hash, Source::Hit(Box::new(cell))));
                            continue;
                        }
                        if let Some(&id) = self.cell_ids.get(h) {
                            // Another figure in the batch already queued
                            // this exact cell; share the one job. Both
                            // figures report it as a miss — it simulates
                            // once, this run.
                            self.stats.misses += 1;
                            cells.push((hash, Source::Job(id)));
                            continue;
                        }
                    }
                    self.stats.misses += 1;
                    let dep = slot.build.recipe().map(|recipe| {
                        let queue = &mut self.queue;
                        *self.train_ids.entry(recipe.hash_hex()).or_insert_with(|| {
                            queue.enqueue(
                                ExpJob::Train(Box::new(recipe.clone())),
                                TRAIN_PRIORITY,
                            )
                        })
                    });
                    let id = self.queue.enqueue(
                        ExpJob::Cell(Box::new(CellRun {
                            job,
                            build: slot.build.clone(),
                            plan: row.plan.clone(),
                        })),
                        CELL_PRIORITY,
                    );
                    if let Some(dep) = dep {
                        self.queue.add_dependency(id, dep);
                    }
                    if let Some(h) = &hash {
                        self.cell_ids.insert(h.clone(), id);
                    }
                    cells.push((hash, Source::Job(id)));
                }
            }
            row_cells.push(cells);
        }
        self.plans.push(SpecPlan { rows, cells: row_cells, seeds: seeds.to_vec() });
        self.plans.len() - 1
    }

    /// Drains the queue on `args.threads` workers and stores every
    /// freshly simulated cell into the cache. Call once, after every spec
    /// is planned.
    pub(crate) fn drain(self) -> DrainedBatch {
        let MatrixBatch { args, cache, store, queue, cell_ids, plans, stats, .. } = self;
        let results = queue.drain(args.threads, |job| execute(&store, job));
        if let Some(cache) = cache {
            // Each distinct simulated cell is stored exactly once, no
            // matter how many figures assemble it.
            for (hash, id) in &cell_ids {
                if let Some(ExpOut::Cell(cell)) = &results[id.index()] {
                    if let Err(e) = cache.store(hash, cell) {
                        eprintln!("warning: result cache store failed for {hash}: {e}");
                    }
                }
            }
        }
        DrainedBatch { cached: cache.is_some(), results, plans, stats }
    }
}

/// The results of a drained [`MatrixBatch`], ready for per-spec assembly.
#[derive(Debug)]
pub(crate) struct DrainedBatch {
    cached: bool,
    results: Vec<Option<ExpOut>>,
    plans: Vec<SpecPlan>,
    pub(crate) stats: CacheStats,
}

impl DrainedBatch {
    /// Assembles plan `idx` into its [`MatrixData`], stamping cache
    /// provenance (`cell_hash` plus `"hit"`/`"miss"`) on every cell when
    /// a cache was active.
    pub(crate) fn matrix(&self, idx: usize) -> MatrixData {
        let plan = &self.plans[idx];
        let mut scenarios = Vec::with_capacity(plan.rows.len());
        for (row, sources) in plan.rows.iter().zip(&plan.cells) {
            let mut cells = Vec::with_capacity(sources.len());
            for (hash, source) in sources {
                let mut cell = match source {
                    Source::Hit(cell) => {
                        let mut cell = (**cell).clone();
                        cell.cache = Some("hit".into());
                        cell
                    }
                    Source::Job(id) => {
                        let Some(ExpOut::Cell(cell)) = &self.results[id.index()] else {
                            panic!("cell job {} produced no record", id.index());
                        };
                        let mut cell = cell.clone();
                        if self.cached {
                            cell.cache = Some("miss".into());
                        }
                        cell
                    }
                };
                cell.cell_hash = hash.clone();
                cells.push(cell);
            }
            scenarios.push(ScenarioData {
                label: row.label.clone(),
                fault_intensity: row.intensity,
                fault_plan_hash: row.plan.as_ref().map(FaultPlan::hash_hex),
                canonical: row.slots.iter().map(|s| s.canonical.clone()).collect(),
                display: row.slots.iter().map(|s| s.display.clone()).collect(),
                seeds: plan.seeds.clone(),
                cells,
            });
        }
        MatrixData { scenarios }
    }
}

/// Executes a spec's full run matrix, cache-free: every cell simulates,
/// and the returned cells carry no cache provenance (`cell_hash` and
/// `cache` both `None`) — the historical contract, bit for bit.
///
/// Scenarios run in order; all `seeds × policies` cells are independent
/// jobs in a [`JobQueue`] drained through [`crate::sweep::run_parallel`]
/// on `args.threads` workers, with NN training enqueued ahead of the
/// cells that depend on it. Training (cold store only) uses the same
/// arguments and seeds as the legacy binaries, and a warm store rebuilds
/// a bit-identical policy with zero training steps.
pub fn run_matrix(
    spec: &ExperimentSpec,
    params: &TierParams,
    seeds: &[u64],
    args: &CliArgs,
) -> MatrixData {
    let mut batch = MatrixBatch::new(args, None);
    let idx = batch.add_spec(spec, params, seeds);
    batch.drain().matrix(idx)
}

/// Like [`run_matrix`], but routed through the content-addressed result
/// cache: cached cells load with zero simulation, misses simulate and are
/// stored for the next run. Hit/miss accounting accumulates into `stats`
/// (simulated-cycle accounting is the caller's, via
/// [`noc_sim::simulated_cycles`]).
pub fn run_matrix_cached(
    spec: &ExperimentSpec,
    params: &TierParams,
    seeds: &[u64],
    args: &CliArgs,
    cache: &ResultCache,
    stats: &mut CacheStats,
) -> MatrixData {
    let mut batch = MatrixBatch::new(args, Some(cache));
    let idx = batch.add_spec(spec, params, seeds);
    let drained = batch.drain();
    stats.absorb(drained.stats);
    drained.matrix(idx)
}

/// The router graph a scenario's fault plan is generated against (fault
/// targets must name real routers/ports/links of the simulated topology,
/// so the plan is drawn on the scenario's own [`super::spec::TopoSpec`]).
fn fault_topology(scenario: &ScenarioSpec) -> Topology {
    match scenario {
        ScenarioSpec::Synthetic { width, height, topo, .. } => {
            topo.build(*width, *height).expect("valid topology")
        }
        _ => apu_sim::ApuTopology::build().clone_topology(),
    }
}

/// The cycle horizon fault onsets/durations are scaled to.
fn fault_horizon(scenario: &ScenarioSpec, params: &TierParams) -> u64 {
    if scenario.is_apu() {
        params.max_cycles
    } else {
        params.warmup + params.measure
    }
}

/// Looks up a figure definition (used by tests; `run_figure` resolves
/// internally).
pub fn resolve(name: &str) -> Option<&'static FigureDef> {
    figures::find(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_an_error() {
        let err = run_figure("fig99", &CliArgs::default()).unwrap_err();
        assert!(err.contains("unknown figure"), "got: {err}");
        assert!(err.contains("fig05"), "error should list known figures: {err}");
    }

    #[test]
    fn legacy_bin_names_resolve_to_the_same_figures() {
        for def in figures::all() {
            let by_name = figures::find(def.name).expect("canonical name resolves");
            let by_bin = figures::find(def.legacy_bin).expect("legacy bin name resolves");
            assert!(std::ptr::eq(by_name, by_bin), "{} aliases diverge", def.name);
        }
    }

    #[test]
    fn backend_labels() {
        use super::super::figures;
        let spec_of = |name: &str| match &figures::find(name).unwrap().kind {
            FigureKind::Matrix { spec, .. } => spec(),
            FigureKind::Custom(_) => panic!("{name} is not a matrix figure"),
        };
        assert_eq!(backend_label(&spec_of("fig05")), "synthetic");
        assert_eq!(backend_label(&spec_of("fig09")), "apu");
        assert_eq!(backend_label(&spec_of("extended_policies")), "mixed");
    }
}
