//! `RunRecord` — the versioned, structured result artifact.
//!
//! Every driver invocation writes one `RunRecord` JSON next to its text
//! table: per-cell metric values, the seed list, the normalization
//! reference, `git describe` and a hash of the `ExperimentSpec`. The
//! schema is the stable contract future sharded/remote execution and
//! regression tooling consume, so it is versioned
//! ([`RUN_RECORD_SCHEMA_VERSION`]) and round-trip tested against a golden
//! file.
//!
//! The build environment has no crates.io access, so serialization is a
//! small hand-rolled JSON emitter plus a minimal recursive-descent parser
//! (numbers keep their lexeme so `u64` seeds survive exactly).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use super::backend::CellRecord;

/// Version stamp of the `RunRecord` JSON schema. Bump on any breaking
/// change and teach consumers both shapes.
///
/// History:
/// * **v1** — initial schema.
/// * **v2** — cells may carry an optional `"fault_plan"` key (the
///   [`noc_sim::FaultPlan::hash_hex`] of the plan the cell ran under).
///   Fault-free cells omit the key, so v1 documents remain parseable by
///   the v2 reader (`tests/run_record.rs` pins this).
/// * **v3** — cells may carry optional `"cell_hash"` (the result-cache
///   content hash of the cell's job identity) and `"cache"` (`"hit"` /
///   `"miss"` provenance) keys. Cells that bypassed the cache omit both,
///   so v1/v2 documents remain parseable (`tests/run_record.rs` pins
///   both frozen goldens).
pub const RUN_RECORD_SCHEMA_VERSION: u64 = 3;

/// A rendered table: header row plus data rows, all strings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

/// The structured result of one driver invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema version ([`RUN_RECORD_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Canonical figure name.
    pub figure: String,
    /// Human title.
    pub title: String,
    /// Tier name (`"quick"` / `"full"`).
    pub tier: String,
    /// Backend name (`"synthetic"`, `"apu"`, or `"mixed"`).
    pub backend: String,
    /// Base seed of the sweep.
    pub base_seed: u64,
    /// Every seed the sweep ran.
    pub seeds: Vec<u64>,
    /// Worker threads used (informational: results are thread-invariant).
    pub threads: u64,
    /// `git describe --always --dirty` of the producing checkout.
    pub git_describe: String,
    /// FNV-1a hash of the experiment spec (empty for custom figures).
    pub spec_hash: String,
    /// Canonical name of the normalization reference policy, if any.
    pub normalization: Option<String>,
    /// Per-cell raw values.
    pub cells: Vec<CellRecord>,
    /// The rendered table, machine-readable.
    pub table: Table,
}

impl RunRecord {
    /// Serializes the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"figure\": {},", json_str(&self.figure));
        let _ = writeln!(s, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(s, "  \"tier\": {},", json_str(&self.tier));
        let _ = writeln!(s, "  \"backend\": {},", json_str(&self.backend));
        let _ = writeln!(s, "  \"base_seed\": {},", self.base_seed);
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(s, "  \"seeds\": [{}],", seeds.join(", "));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"git_describe\": {},", json_str(&self.git_describe));
        let _ = writeln!(s, "  \"spec_hash\": {},", json_str(&self.spec_hash));
        match &self.normalization {
            Some(n) => {
                let _ = writeln!(s, "  \"normalization\": {},", json_str(n));
            }
            None => s.push_str("  \"normalization\": null,\n"),
        }
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(s, "    {}", cell_to_json(c));
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"table\": {\n");
        let headers: Vec<String> = self.table.headers.iter().map(|h| json_str(h)).collect();
        let _ = writeln!(s, "    \"headers\": [{}],", headers.join(", "));
        s.push_str("    \"rows\": [\n");
        for (i, row) in self.table.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|c| json_str(c)).collect();
            let _ = write!(s, "      [{}]", cells.join(", "));
            s.push_str(if i + 1 < self.table.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("    ]\n");
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }

    /// Parses a record back from JSON (the regression-tooling direction).
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object()?;
        let cells_json = obj.get("cells").ok_or("missing 'cells'")?.as_array()?;
        let mut cells = Vec::with_capacity(cells_json.len());
        for c in cells_json {
            cells.push(cell_from_json(c)?);
        }
        let table_obj = obj.get("table").ok_or("missing 'table'")?.as_object()?;
        let headers = table_obj
            .get("headers")
            .ok_or("missing table 'headers'")?
            .as_array()?
            .iter()
            .map(Json::as_str)
            .collect::<Result<Vec<_>, _>>()?;
        let mut rows = Vec::new();
        for row in table_obj.get("rows").ok_or("missing table 'rows'")?.as_array()? {
            rows.push(
                row.as_array()?
                    .iter()
                    .map(Json::as_str)
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        let get_str = |key: &str| -> Result<String, String> {
            obj.get(key).ok_or(format!("missing '{key}'"))?.as_str()
        };
        let normalization = match obj.get("normalization") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str()?),
        };
        Ok(RunRecord {
            schema_version: obj
                .get("schema_version")
                .ok_or("missing 'schema_version'")?
                .as_u64()?,
            figure: get_str("figure")?,
            title: get_str("title")?,
            tier: get_str("tier")?,
            backend: get_str("backend")?,
            base_seed: obj.get("base_seed").ok_or("missing 'base_seed'")?.as_u64()?,
            seeds: obj
                .get("seeds")
                .ok_or("missing 'seeds'")?
                .as_array()?
                .iter()
                .map(Json::as_u64)
                .collect::<Result<Vec<_>, _>>()?,
            threads: obj.get("threads").ok_or("missing 'threads'")?.as_u64()?,
            git_describe: get_str("git_describe")?,
            spec_hash: get_str("spec_hash")?,
            normalization,
            cells,
            table: Table { headers, rows },
        })
    }

    /// Writes the record to `<dir>/<basename>.json`, creating the
    /// directory, and returns the path. I/O errors propagate.
    pub fn write(&self, dir: &Path, basename: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{basename}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable (results must still be writable offline).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Serializes one cell as a single-line JSON object. Shared by the
/// record emitter and the result cache so a cell's byte shape is
/// identical in both stores. Optional keys (`artifact`, `fault_plan`,
/// `cell_hash`, `cache`) appear only when present, so older-shape
/// documents keep their exact bytes.
pub(crate) fn cell_to_json(c: &CellRecord) -> String {
    let metrics: Vec<String> = c
        .metrics
        .iter()
        .map(|(k, v)| format!("{}: {}", json_str(k), json_num(*v)))
        .collect();
    let opt = |key: &str, v: &Option<String>| match v {
        Some(s) => format!(", {}: {}", json_str(key), json_str(s)),
        None => String::new(),
    };
    format!(
        "{{\"scenario\": {}, \"policy\": {}, \"seed\": {}{}{}{}{}, \"metrics\": {{{}}}}}",
        json_str(&c.scenario),
        json_str(&c.policy),
        c.seed,
        opt("artifact", &c.artifact),
        opt("fault_plan", &c.fault_plan),
        opt("cell_hash", &c.cell_hash),
        opt("cache", &c.cache),
        metrics.join(", ")
    )
}

/// Parses one cell from its JSON value (inverse of [`cell_to_json`]).
pub(crate) fn cell_from_json(c: &Json) -> Result<CellRecord, String> {
    let co = c.as_object()?;
    let metrics_obj = co.get("metrics").ok_or("missing cell 'metrics'")?.as_object()?;
    let mut metrics = Vec::with_capacity(metrics_obj.len());
    for (k, v) in metrics_obj {
        metrics.push((k.clone(), v.as_f64()?));
    }
    let opt = |key: &str| -> Result<Option<String>, String> {
        match co.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => Ok(Some(v.as_str()?)),
        }
    };
    Ok(CellRecord {
        scenario: co.get("scenario").ok_or("missing cell 'scenario'")?.as_str()?,
        policy: co.get("policy").ok_or("missing cell 'policy'")?.as_str()?,
        seed: co.get("seed").ok_or("missing cell 'seed'")?.as_u64()?,
        artifact: opt("artifact")?,
        fault_plan: opt("fault_plan")?,
        cell_hash: opt("cell_hash")?,
        cache: opt("cache")?,
        metrics,
    })
}

/// Escapes a string for JSON.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 so it parses back to the same bits (`{:?}` is
/// Rust's shortest round-trip float form); non-finite values become null.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}

/// A minimal JSON value — just enough for the `RunRecord` schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its lexeme so integers survive exactly.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    pub(crate) fn as_object(&self) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    pub(crate) fn as_array(&self) -> Result<&Vec<Json>, String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    pub(crate) fn as_str(&self) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => n.parse().map_err(|_| format!("expected u64, got {n}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    pub(crate) fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(n) => n.parse().map_err(|_| format!("bad number {n}")),
            Json::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

/// Helper for object field lookup on the insertion-ordered pairs.
pub(crate) trait ObjExt {
    /// Looks up `key`, returning the first match.
    fn get(&self, key: &str) -> Option<&Json>;
}

impl ObjExt for Vec<(String, Json)> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char, pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if start == *pos {
                return Err(format!("unexpected byte at {start}"));
            }
            let lexeme = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            lexeme
                .parse::<f64>()
                .map_err(|_| format!("bad number '{lexeme}'"))?;
            Ok(Json::Num(lexeme.to_string()))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            schema_version: RUN_RECORD_SCHEMA_VERSION,
            figure: "fig09".into(),
            title: "normalized average execution time".into(),
            tier: "quick".into(),
            backend: "apu".into(),
            base_seed: 42,
            seeds: vec![42, 43],
            threads: 4,
            git_describe: "abc1234-dirty".into(),
            spec_hash: "00ff00ff00ff00ff".into(),
            normalization: Some("global-age".into()),
            cells: vec![CellRecord {
                scenario: "bfs".into(),
                policy: "round-robin".into(),
                seed: 42,
                artifact: None,
                fault_plan: None,
                cell_hash: None,
                cache: None,
                metrics: vec![("avg_exec".into(), 1234.5), ("tail_exec".into(), 2000.0)],
            }],
            table: Table {
                headers: vec!["workload".into(), "Round-robin".into()],
                rows: vec![vec!["bfs".into(), "1.046".into()]],
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let rec = sample();
        let parsed = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn json_escapes_special_chars() {
        let mut rec = sample();
        rec.title = "quote \" backslash \\ newline \n tab \t".into();
        let parsed = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed.title, rec.title);
    }

    #[test]
    fn cell_artifacts_round_trip_and_absent_ones_stay_absent() {
        let mut rec = sample();
        rec.cells[0].artifact = Some("0123456789abcdef".into());
        let json = rec.to_json();
        assert!(json.contains("\"artifact\": \"0123456789abcdef\""));
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
        rec.cells[0].artifact = None;
        let json = rec.to_json();
        assert!(!json.contains("artifact"), "no key for artifact-free cells");
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
    }

    #[test]
    fn cell_fault_plans_round_trip_and_absent_ones_stay_absent() {
        let mut rec = sample();
        rec.cells[0].fault_plan = Some("fedcba9876543210".into());
        let json = rec.to_json();
        assert!(json.contains("\"fault_plan\": \"fedcba9876543210\""));
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
        rec.cells[0].fault_plan = None;
        let json = rec.to_json();
        assert!(!json.contains("fault_plan"), "no key for fault-free cells");
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
    }

    #[test]
    fn cell_cache_provenance_round_trips_and_absent_ones_stay_absent() {
        let mut rec = sample();
        rec.cells[0].cell_hash = Some("0011223344556677".into());
        rec.cells[0].cache = Some("hit".into());
        let json = rec.to_json();
        assert!(json.contains("\"cell_hash\": \"0011223344556677\""));
        assert!(json.contains("\"cache\": \"hit\""));
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
        rec.cells[0].cell_hash = None;
        rec.cells[0].cache = None;
        let json = rec.to_json();
        assert!(!json.contains("cell_hash"), "no key for uncached cells");
        assert!(!json.contains("\"cache\""), "no key for uncached cells");
        assert_eq!(RunRecord::from_json(&json).unwrap(), rec);
    }

    #[test]
    fn null_normalization_round_trips() {
        let mut rec = sample();
        rec.normalization = None;
        let parsed = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed.normalization, None);
    }

    #[test]
    fn large_seeds_survive_exactly() {
        let mut rec = sample();
        rec.seeds = vec![u64::MAX, 0];
        rec.base_seed = u64::MAX;
        let parsed = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed.seeds, rec.seeds);
        assert_eq!(parsed.base_seed, u64::MAX);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunRecord::from_json("{").is_err());
        assert!(RunRecord::from_json("{} trailing").is_err());
        assert!(RunRecord::from_json("{\"figure\": 3}").is_err());
    }
}
