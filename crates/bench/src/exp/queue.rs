//! A priority job queue with dependency edges and cancellation.
//!
//! The experiment service schedules its work — NN training and simulation
//! cells — through this queue rather than ad-hoc loops: jobs carry a
//! priority and may depend on other jobs (train-before-simulate), and the
//! queue drains in dependency waves through
//! [`crate::sweep::run_parallel`], so results keep the determinism
//! contract of the sweep engine (each job's result depends only on its
//! payload, never on scheduling order).
//!
//! Cancellation is transitive: cancelling a job also cancels every job
//! that (directly or indirectly) depends on it, and cancelled jobs drain
//! to `None`.

use crate::sweep;

/// Handle to one enqueued job (an index into the queue's result vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// The job's index in the [`JobQueue::drain`] result vector.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Pending,
    Done,
    Cancelled,
}

#[derive(Debug)]
struct Slot<J> {
    payload: Option<J>,
    priority: i64,
    deps: Vec<JobId>,
    state: JobState,
}

/// A dependency-aware priority queue of jobs of type `J`.
#[derive(Debug, Default)]
pub struct JobQueue<J> {
    slots: Vec<Slot<J>>,
}

impl<J: Send> JobQueue<J> {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue { slots: Vec::new() }
    }

    /// Number of jobs ever enqueued (including cancelled ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue holds no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Enqueues a job. Higher `priority` dispatches earlier within a
    /// dependency wave; ties break by enqueue order.
    pub fn enqueue(&mut self, job: J, priority: i64) -> JobId {
        self.slots.push(Slot {
            payload: Some(job),
            priority,
            deps: Vec::new(),
            state: JobState::Pending,
        });
        JobId(self.slots.len() - 1)
    }

    /// Records that `job` must not start before `dep` has completed.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the edge is a self-loop.
    pub fn add_dependency(&mut self, job: JobId, dep: JobId) {
        assert!(job.0 < self.slots.len() && dep.0 < self.slots.len(), "unknown job id");
        assert_ne!(job, dep, "a job cannot depend on itself");
        self.slots[job.0].deps.push(dep);
    }

    /// Cancels a job. The job (and, at drain time, everything depending
    /// on it) resolves to `None` instead of running.
    pub fn cancel(&mut self, job: JobId) {
        assert!(job.0 < self.slots.len(), "unknown job id");
        self.slots[job.0].state = JobState::Cancelled;
        self.slots[job.0].payload = None;
    }

    /// Runs every job to completion on `threads` workers and returns the
    /// results indexed by [`JobId`] (`None` for cancelled jobs).
    ///
    /// Jobs dispatch in dependency waves: each wave is every pending job
    /// whose dependencies are all done, ordered by (priority descending,
    /// id ascending), and runs through [`sweep::run_parallel`].
    /// Cancellation propagates before each wave, so a job depending on a
    /// cancelled job never runs.
    ///
    /// # Panics
    ///
    /// Panics if the dependency graph has a cycle (some jobs can never
    /// become ready).
    pub fn drain<R: Send>(mut self, threads: usize, f: impl Fn(J) -> R + Sync) -> Vec<Option<R>> {
        let mut results: Vec<Option<R>> = (0..self.slots.len()).map(|_| None).collect();
        loop {
            // Propagate cancellation to dependents until a fixpoint.
            loop {
                let mut changed = false;
                for i in 0..self.slots.len() {
                    if self.slots[i].state == JobState::Pending
                        && self.slots[i]
                            .deps
                            .iter()
                            .any(|d| self.slots[d.0].state == JobState::Cancelled)
                    {
                        self.slots[i].state = JobState::Cancelled;
                        self.slots[i].payload = None;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut ready: Vec<usize> = (0..self.slots.len())
                .filter(|&i| {
                    self.slots[i].state == JobState::Pending
                        && self.slots[i]
                            .deps
                            .iter()
                            .all(|d| self.slots[d.0].state == JobState::Done)
                })
                .collect();
            if ready.is_empty() {
                let stuck = self
                    .slots
                    .iter()
                    .filter(|s| s.state == JobState::Pending)
                    .count();
                assert!(stuck == 0, "dependency cycle: {stuck} job(s) can never become ready");
                return results;
            }
            ready.sort_by_key(|&i| (-self.slots[i].priority, i));
            let jobs: Vec<(usize, J)> = ready
                .iter()
                .map(|&i| (i, self.slots[i].payload.take().expect("pending job has a payload")))
                .collect();
            for r in sweep::run_parallel(jobs, threads, |(i, job)| (i, f(job))) {
                results[r.0] = Some(r.1);
                self.slots[r.0].state = JobState::Done;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_indexed_by_job_id() {
        let mut q = JobQueue::new();
        let ids: Vec<JobId> = (0..5).map(|i| q.enqueue(i, 0)).collect();
        let out = q.drain(2, |i: i32| i * 10);
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(out[id.index()], Some(k as i32 * 10));
        }
    }

    #[test]
    fn priority_orders_a_wave() {
        let mut q = JobQueue::new();
        q.enqueue("low", -1);
        q.enqueue("high", 10);
        q.enqueue("mid", 3);
        let order = std::sync::Mutex::new(Vec::new());
        // Single-threaded drain dispatches strictly in wave order.
        q.drain(1, |name: &str| order.lock().unwrap().push(name));
        assert_eq!(*order.lock().unwrap(), vec!["high", "mid", "low"]);
    }

    #[test]
    fn dependencies_run_before_dependents() {
        let mut q = JobQueue::new();
        // Dependent enqueued first and with the higher priority — the
        // dependency edge must still win.
        let cell = q.enqueue("cell", 100);
        let train = q.enqueue("train", 0);
        q.add_dependency(cell, train);
        let order = std::sync::Mutex::new(Vec::new());
        q.drain(4, |name: &str| order.lock().unwrap().push(name));
        assert_eq!(*order.lock().unwrap(), vec!["train", "cell"]);
    }

    #[test]
    fn cancellation_is_transitive_and_spares_the_rest() {
        let mut q = JobQueue::new();
        let a = q.enqueue("a", 0);
        let b = q.enqueue("b", 0);
        let c = q.enqueue("c", 0);
        let d = q.enqueue("d", 0);
        q.add_dependency(b, a); // b ← a
        q.add_dependency(c, b); // c ← b (transitively ← a)
        q.cancel(a);
        let ran = AtomicUsize::new(0);
        let out = q.drain(2, |name: &str| {
            ran.fetch_add(1, Ordering::Relaxed);
            name
        });
        assert_eq!(out[a.index()], None);
        assert_eq!(out[b.index()], None);
        assert_eq!(out[c.index()], None);
        assert_eq!(out[d.index()], Some("d"));
        assert_eq!(ran.load(Ordering::Relaxed), 1, "only the independent job ran");
    }

    #[test]
    fn diamond_dependencies_drain_in_waves() {
        let mut q = JobQueue::new();
        let root = q.enqueue(0usize, 0);
        let left = q.enqueue(1, 0);
        let right = q.enqueue(2, 0);
        let join = q.enqueue(3, 0);
        q.add_dependency(left, root);
        q.add_dependency(right, root);
        q.add_dependency(join, left);
        q.add_dependency(join, right);
        let out = q.drain(4, |i| i);
        assert_eq!(out, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn cycles_panic_instead_of_hanging() {
        let mut q = JobQueue::new();
        let a = q.enqueue(1, 0);
        let b = q.enqueue(2, 0);
        q.add_dependency(a, b);
        q.add_dependency(b, a);
        q.drain(1, |i: i32| i);
    }

    #[test]
    #[should_panic(expected = "cannot depend on itself")]
    fn self_edges_are_rejected() {
        let mut q = JobQueue::new();
        let a = q.enqueue(1, 0);
        q.add_dependency(a, a);
    }
}
