//! `repro conformance` — the randomized invariant-checker conformance
//! harness over both simulators.
//!
//! The figure draws seeded random scenarios — topology (mesh, torus,
//! ring, degraded mesh) × size × traffic pattern × routing × every
//! [`PolicyKind`] × fault intensity — runs each with the
//! runtime invariant checker enabled ([`noc_sim::InvariantChecker`] on the
//! synthetic mesh, plus the protocol-level engine checker on the APU
//! chip), and reports any violation. A healthy tree reports zero: the
//! simulators conserve messages and credits under every arbitration
//! policy, any routing function, and arbitrary generated fault plans.
//!
//! When a case *does* fail, the harness does not stop at "seed 0xDEAD
//! broke": [`minimize`] greedily shrinks the failing case — fewer cycles,
//! smaller mesh, lower rate, lower fault intensity, plainer pattern and
//! routing — re-running the checker at every step, and reports the
//! smallest case that still reproduces the violation. That minimal case
//! (a handful of scalar fields) is the bug report.
//!
//! Everything is a pure function of the base `--seed`: case derivation
//! uses [`SplitMix64`] streams keyed by `(seed, policy, intensity,
//! trial)`, so a reported reproducer is replayable on any machine.

use apu_sim::{run_apu_checked, EngineConfig, NUM_QUADRANTS};
use apu_workloads::Benchmark;
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{
    FaultPlan, FeatureBounds, Pattern, RoutingKind, SimConfig, Simulator, SplitMix64,
    SyntheticTraffic,
};

use super::backend::CellRecord;
use super::figures::CustomOutput;
use super::spec::TopoSpec;
use crate::{render_table, sweep, CliArgs};

/// One fully determined conformance scenario — every field a plain
/// scalar, so a failing case prints as a complete reproducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformanceCase {
    /// Mesh width.
    pub width: u16,
    /// Mesh height.
    pub height: u16,
    /// Synthetic traffic pattern.
    pub pattern: Pattern,
    /// Injection rate (packets/node/cycle).
    pub rate: f64,
    /// Router graph (built at `width × height` scale).
    pub topo: TopoSpec,
    /// Routing function.
    pub routing: RoutingKind,
    /// Arbitration policy under test.
    pub policy: PolicyKind,
    /// Fault-plan intensity (`0.0` = fault-free, no plan installed).
    pub intensity: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Seed feeding traffic, stochastic policies and the fault plan.
    pub seed: u64,
    /// Cycle at which to arm the test-only credit-leak hook (`None` in
    /// every real sweep; set by the self-test that proves the harness
    /// catches and shrinks a seeded bug).
    pub leak_at: Option<u64>,
    /// Replace the arbiter under test with an online-learning DQN policy
    /// ([`rl_arb::OnlinePolicy`], cold-started at this case's seed).
    /// Drawn for a fraction of mesh cases — the checker must hold while
    /// the arbitration policy is *changing under live traffic*.
    pub online: bool,
    /// Attach the learned per-VC buffer controller
    /// ([`rl_arb::RlVcController`]): the occupancy/credit invariants must
    /// hold while credit budgets are being reallocated every epoch.
    pub vc_ctl: bool,
    /// Control epoch of the attached buffer controller (cycles).
    pub ctl_epoch: u64,
    /// Replay-ring capacity of the online policy.
    pub replay_cap: usize,
    /// Cycle at which to arm the test-only misbehaving-controller hook
    /// (`None` in every real sweep; the self-test proves the occupancy
    /// invariant catches a controller that corrupts the books).
    pub misbehave_at: Option<u64>,
}

impl ConformanceCase {
    /// Renders the case as a one-line replayable reproducer.
    pub fn reproducer(&self) -> String {
        let mut s = format!(
            "policy={} topo={} mesh={}x{} pattern={:?} rate={:.3} routing={:?} \
             intensity={:.2} cycles={} seed={}",
            self.policy.as_str(),
            self.topo.label(),
            self.width,
            self.height,
            self.pattern,
            self.rate,
            self.routing,
            self.intensity,
            self.cycles,
            self.seed,
        );
        if self.online || self.vc_ctl {
            s.push_str(&format!(
                " online={} vcctl={} ctl_epoch={} replay_cap={}",
                u8::from(self.online),
                u8::from(self.vc_ctl),
                self.ctl_epoch,
                self.replay_cap,
            ));
        }
        s
    }

    /// True when the case's routing function can run on its topology.
    /// Minimization steps may propose incompatible pairs; those are
    /// rejected without being run.
    pub fn is_valid(&self) -> bool {
        self.routing.supports(self.topo.kind())
    }
}

/// Outcome of one checked run.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Total violations the checker recorded (including past the
    /// recording cap).
    pub violations: u64,
    /// Display form of the first recorded violation, if any.
    pub first: Option<String>,
}

/// Derives the fully determined case for one `(policy, intensity, trial)`
/// cell of the sweep. Pure function of its arguments — the printed
/// reproducer from any machine replays anywhere.
pub fn derive_case(
    base_seed: u64,
    policy: PolicyKind,
    policy_idx: usize,
    intensity: f64,
    trial: u64,
    cycles: u64,
) -> ConformanceCase {
    let mut rng = SplitMix64::new(
        base_seed ^ (policy_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ trial.rotate_left(17),
    );
    // Discard one draw so adjacent streams decorrelate fully.
    let _ = rng.next_u64();
    let (width, height) = if rng.chance(0.25) { (8, 8) } else { (4, 4) };
    let pattern = match rng.next_bounded(5) {
        0 => Pattern::Transpose,
        1 => Pattern::BitComplement,
        2 => Pattern::Tornado,
        3 => Pattern::Hotspot {
            node: noc_sim::NodeId(rng.next_bounded(u64::from(width) * u64::from(height)) as usize),
            fraction: 0.2 + rng.next_f64() * 0.3,
        },
        _ => Pattern::UniformRandom,
    };
    let routing = if rng.chance(0.3) {
        RoutingKind::WestFirstAdaptive
    } else {
        RoutingKind::XY
    };
    // Larger meshes saturate at lower per-node rates; keep cases live.
    let max_rate = if width == 8 { 0.25 } else { 0.45 };
    let rate = 0.02 + rng.next_f64() * (max_rate - 0.02);
    let seed = rng.next_u64();
    // Topology draws are appended at the END of the stream so the
    // historical mesh cases keep every field they had per base seed; a
    // quarter of the cases move to a non-mesh graph with a compatible
    // deterministic routing kind.
    let (topo, routing) = if rng.chance(0.25) {
        match rng.next_bounded(3) {
            0 => (
                TopoSpec::Torus,
                if rng.chance(0.5) { RoutingKind::TorusDimOrder } else { RoutingKind::TableShortest },
            ),
            1 => (
                TopoSpec::Ring,
                if rng.chance(0.5) { RoutingKind::RingShortest } else { RoutingKind::TorusDimOrder },
            ),
            _ => (
                TopoSpec::DegradedMesh { seed: seed ^ 0xD06, drop_percent: 20 },
                RoutingKind::TableShortest,
            ),
        }
    } else {
        (TopoSpec::Mesh, routing)
    };
    // Self-healing draws are appended at the END of the stream so every
    // historical case keeps its fields per base seed. ~20% of cases
    // exercise the learned decision points: online-learning arbitration
    // (mesh only — the encoder is sized for the mesh port count) and/or
    // the learned VC buffer controller (topology-agnostic).
    let mut online = false;
    let mut vc_ctl = false;
    let mut ctl_epoch: u64 = 64;
    let mut replay_cap: usize = 256;
    if rng.chance(0.2) {
        match rng.next_bounded(3) {
            0 => online = true,
            1 => vc_ctl = true,
            _ => {
                online = true;
                vc_ctl = true;
            }
        }
        ctl_epoch = 16 << rng.next_bounded(3);
        replay_cap = 64 << rng.next_bounded(3) as usize;
        if !matches!(topo, TopoSpec::Mesh) {
            online = false;
        }
    }
    ConformanceCase {
        width,
        height,
        pattern,
        rate,
        topo,
        routing,
        policy,
        intensity,
        cycles,
        seed,
        leak_at: None,
        online,
        vc_ctl,
        ctl_epoch,
        replay_cap,
        misbehave_at: None,
    }
}

/// Runs one case on the synthetic mesh with the invariant checker
/// enabled and reports what the checker saw.
pub fn run_case(case: &ConformanceCase) -> CaseOutcome {
    let topo = case.topo.build(case.width, case.height).expect("valid topology");
    let mut cfg = SimConfig::synthetic(case.width, case.height);
    cfg.routing = case.routing;
    cfg.feature_bounds = FeatureBounds::for_topology(&topo);
    let arbiter: Box<dyn noc_sim::Arbiter> = if case.online {
        // Cold-started online learner: random initial weights, live
        // training — the harshest policy the checker can face, since
        // every decision distribution drifts as the run progresses.
        let encoder = rl_arb::StateEncoder::new(
            5,
            cfg.num_vnets,
            rl_arb::FeatureSet::synthetic(),
            cfg.feature_bounds,
        );
        let agent_cfg = rl_arb::AgentConfig {
            replay_capacity: case.replay_cap,
            ..rl_arb::AgentConfig::tuned_synthetic(case.seed)
        };
        let net = nn_mlp::Mlp::paper_agent(
            encoder.state_width(),
            agent_cfg.hidden,
            encoder.num_slots(),
            case.seed,
        );
        Box::new(rl_arb::OnlinePolicy::new(net, encoder, agent_cfg))
    } else {
        make_arbiter(case.policy, case.seed)
    };
    let traffic = SyntheticTraffic::new(&topo, case.pattern, case.rate, cfg.num_vnets, case.seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    if case.vc_ctl {
        sim.set_buffer_controller(Box::new(rl_arb::RlVcController::new(
            case.ctl_epoch.max(1),
            2,
            0.05,
            0.2,
            case.seed ^ 0xBC_0571,
        )));
    }
    sim.enable_invariant_checker();
    if case.intensity > 0.0 {
        let topo = case.topo.build(case.width, case.height).expect("valid topology");
        sim.set_fault_plan(&FaultPlan::generate(
            case.seed ^ 0xFAB7,
            case.intensity,
            &topo,
            case.cycles,
        ));
    }
    if let Some(at) = case.leak_at {
        sim.debug_inject_credit_leak(at);
    }
    if let Some(at) = case.misbehave_at {
        sim.debug_misbehaving_controller(at);
    }
    sim.run(case.cycles);
    CaseOutcome {
        violations: sim.total_invariant_violations(),
        first: sim.invariant_violations().first().map(|v| v.to_string()),
    }
}

/// Greedily shrinks a failing case to a minimal one that still fails:
/// bisect the cycle budget, collapse the mesh to 4×4, halve the rate,
/// lower the fault intensity, plain-ify pattern and routing, and try
/// small seeds — accepting each step only if the checker still reports a
/// violation. Returns the input unchanged if it does not fail at all.
pub fn minimize(case: ConformanceCase) -> ConformanceCase {
    // Invalid routing × topology candidates (a lone routing reset on a
    // ring case, say) are rejected outright instead of being run.
    let fails = |c: &ConformanceCase| c.is_valid() && run_case(c).violations > 0;
    if !fails(&case) {
        return case;
    }
    let mut cur = case;
    // Cycle-budget bisection (the biggest lever on replay time).
    while cur.cycles >= 200 {
        let candidate = ConformanceCase { cycles: cur.cycles / 2, ..cur };
        if fails(&candidate) {
            cur = candidate;
        } else {
            break;
        }
    }
    // Each step derives its candidate from the *current* shrunk case, so
    // accepted shrinks compose instead of overwriting one another.
    let steps: [fn(&ConformanceCase) -> ConformanceCase; 7] = [
        |c| ConformanceCase { width: 4, height: 4, ..*c },
        |c| ConformanceCase { intensity: 0.0, ..*c },
        |c| ConformanceCase { pattern: Pattern::UniformRandom, ..*c },
        // Topology and routing reset together so the candidate stays a
        // valid pair; the lone routing reset then cleans up cases that
        // were already on a mesh/torus.
        |c| ConformanceCase { topo: TopoSpec::Mesh, routing: RoutingKind::XY, ..*c },
        |c| ConformanceCase { routing: RoutingKind::XY, ..*c },
        // Learned components off: a failure that survives these shrinks
        // was never the online learner's (or controller's) doing.
        |c| ConformanceCase { online: false, ..*c },
        |c| ConformanceCase { vc_ctl: false, ..*c },
    ];
    for step in steps {
        let candidate = step(&cur);
        if candidate != cur && fails(&candidate) {
            cur = candidate;
        }
    }
    // Learned-case knobs shrink toward a one-line reproducer: a tighter
    // control epoch replays faster, a smaller replay buffer narrows which
    // experiences could have mattered.
    while cur.vc_ctl && cur.ctl_epoch > 1 {
        let candidate = ConformanceCase { ctl_epoch: cur.ctl_epoch / 2, ..cur };
        if fails(&candidate) {
            cur = candidate;
        } else {
            break;
        }
    }
    while cur.online && cur.replay_cap > 4 {
        let candidate = ConformanceCase { replay_cap: cur.replay_cap / 2, ..cur };
        if fails(&candidate) {
            cur = candidate;
        } else {
            break;
        }
    }
    while cur.rate > 0.04 {
        let candidate = ConformanceCase { rate: cur.rate / 2.0, ..cur };
        if fails(&candidate) {
            cur = candidate;
        } else {
            break;
        }
    }
    for seed in 0..4 {
        if cur.seed == seed {
            break;
        }
        let candidate = ConformanceCase { seed, ..cur };
        if fails(&candidate) {
            cur = candidate;
            break;
        }
    }
    cur
}

/// The fault intensities swept per tier.
fn intensities(quick: bool) -> &'static [f64] {
    if quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.25, 0.5, 1.0]
    }
}

/// Checked APU runs: closed-loop protocol traffic under a handful of
/// policies, fault-free and heavily faulted. Returns `(label, outcome)`
/// rows.
fn apu_rows(args: &CliArgs) -> Vec<(String, CaseOutcome)> {
    let scale = if args.quick { 0.02 } else { 0.05 };
    let max_cycles: u64 = if args.quick { 200_000 } else { 400_000 };
    let policies: &[PolicyKind] = if args.quick {
        &[PolicyKind::Fifo, PolicyKind::GlobalAge]
    } else {
        &[
            PolicyKind::Fifo,
            PolicyKind::GlobalAge,
            PolicyKind::Algorithm2,
            PolicyKind::Islip,
        ]
    };
    let jobs: Vec<(usize, PolicyKind)> = policies.iter().copied().enumerate().collect();
    sweep::run_parallel(jobs, args.threads, |(i, policy)| {
        // Alternate fault-free and faulted runs across the line-up.
        let faulted = i % 2 == 1;
        let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
        let plan = faulted.then(|| {
            let topo = apu_sim::ApuTopology::build().clone_topology();
            FaultPlan::generate(args.seed ^ 0xA9u64, 1.0, &topo, max_cycles)
        });
        let out = run_apu_checked(
            specs,
            make_arbiter(policy, args.seed),
            EngineConfig::default(),
            args.seed.wrapping_add(i as u64),
            max_cycles,
            plan.as_ref(),
        );
        let label = format!(
            "apu/bfs {} {}",
            policy.as_str(),
            if faulted { "f1.00" } else { "f0.00" }
        );
        let outcome = CaseOutcome {
            violations: out.violations.len() as u64,
            first: out.violations.first().map(|v| v.to_string()),
        };
        (label, outcome)
    })
}

/// Runs the conformance sweep end-to-end: the custom-figure entry point
/// behind `repro conformance [--quick]`.
pub fn run(args: &CliArgs) -> CustomOutput {
    let trials: u64 = if args.quick { 1 } else { 3 };
    let cycles: u64 = if args.quick { 1_500 } else { 4_000 };

    let mut jobs = Vec::new();
    for (pi, policy) in PolicyKind::ALL.into_iter().enumerate() {
        for &intensity in intensities(args.quick) {
            for trial in 0..trials {
                jobs.push(derive_case(args.seed, policy, pi, intensity, trial, cycles));
            }
        }
    }
    let synth_runs = jobs.len();
    let outcomes: Vec<(ConformanceCase, CaseOutcome)> =
        sweep::run_parallel(jobs, args.threads, |case| {
            let outcome = run_case(&case);
            (case, outcome)
        });

    // Aggregate per policy; shrink every failing case to its minimal
    // reproducer.
    let mut reproducers = Vec::new();
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for policy in PolicyKind::ALL {
        let mine: Vec<&(ConformanceCase, CaseOutcome)> =
            outcomes.iter().filter(|(c, _)| c.policy == policy).collect();
        let runs = mine.len();
        let violations: u64 = mine.iter().map(|(_, o)| o.violations).sum();
        for (case, outcome) in &mine {
            if outcome.violations > 0 {
                let minimal = minimize(*case);
                reproducers.push(format!(
                    "{} -> {} ({})",
                    case.reproducer(),
                    minimal.reproducer(),
                    outcome.first.as_deref().unwrap_or("violation recorded past cap"),
                ));
            }
        }
        let status = if violations == 0 { "PASS" } else { "FAIL" };
        cells.push(CellRecord {
            scenario: "synthetic".into(),
            policy: policy.as_str().into(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("runs".into(), runs as f64),
                ("violations".into(), violations as f64),
            ],
        });
        rows.push(vec![
            policy.as_str().to_string(),
            runs.to_string(),
            violations.to_string(),
            status.to_string(),
        ]);
    }

    let apu = apu_rows(args);
    let apu_runs = apu.len();
    for (label, outcome) in &apu {
        let status = if outcome.violations == 0 { "PASS" } else { "FAIL" };
        if let Some(first) = &outcome.first {
            reproducers.push(format!("{label}: {first}"));
        }
        cells.push(CellRecord {
            scenario: "apu".into(),
            policy: label.clone(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("runs".into(), 1.0),
                ("violations".into(), outcome.violations as f64),
            ],
        });
        rows.push(vec![
            label.clone(),
            "1".into(),
            outcome.violations.to_string(),
            status.to_string(),
        ]);
    }

    let headers = ["case", "runs", "violations", "status"];
    let total_runs = synth_runs + apu_runs;
    let total_violations: u64 = outcomes.iter().map(|(_, o)| o.violations).sum::<u64>()
        + apu.iter().map(|(_, o)| o.violations).sum::<u64>();
    let mut text = format!(
        "\n== conformance: randomized invariant-checker sweep ({} policies x {} intensities x {} trials + {} apu runs) ==\n\n{}\n",
        PolicyKind::ALL.len(),
        intensities(args.quick).len(),
        trials,
        apu_runs,
        render_table(&headers, &rows)
    );
    if reproducers.is_empty() {
        text.push_str(&format!(
            "conformance: PASS ({total_runs} runs, 0 violations)\n"
        ));
    } else {
        text.push_str(&format!(
            "conformance: FAIL ({total_runs} runs, {total_violations} violations)\n"
        ));
        text.push_str("minimal reproducers (original -> shrunk):\n");
        for r in &reproducers {
            text.push_str(&format!("  {r}\n"));
        }
    }
    CustomOutput {
        text,
        table: super::record::Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        },
        cells,
        backend: "mixed",
    }
}
