//! The figure registry: every EXPERIMENTS.md figure, reachable by name.
//!
//! A figure is either **matrix** — a declarative [`ExperimentSpec`] (run
//! matrix over scenarios × policies × seeds) plus a renderer that turns
//! the collected cells into the legacy binary's exact text — or
//! **custom** — a procedure (training curves, weight heatmaps, the
//! analytical synthesis table) that cannot be expressed as a cell matrix
//! and instead returns its text and structured rows directly. Both run
//! through [`super::driver::run_figure`] and emit a `RunRecord`.
//!
//! Renderers reproduce the pre-refactor binaries' stdout byte-for-byte;
//! `tests/driver_equivalence.rs` pins that for Fig. 5 and Fig. 9.

use apu_sim::{make_apu_sim, EngineConfig, APU_MESH, NUM_QUADRANTS};
use apu_workloads::{Benchmark, InjectionClass};
use noc_sim::{NodeId, Pattern, RoutingKind, SimConfig};
use rl_arb::{
    hill_climb, train_synthetic, weight_heatmap, AgentConfig, DqnAgent, Feature, FeatureSet,
    PartitionedAgents, RewardKind, StateEncoder, TrainSpec,
};

use super::backend::CellRecord;
use super::driver::MatrixData;
use super::record::Table;
use super::spec::{
    ExperimentSpec, FaultAxis, Lineup, NnRecipe, Normalize, ScenarioSpec, TierParams, TopoSpec,
};
use crate::{geomean, render_series, render_table, train_apu_agent, CliArgs};

/// One registered figure.
#[derive(Debug)]
pub struct FigureDef {
    /// Canonical driver name (`fig05`, `table3`, …).
    pub name: &'static str,
    /// The legacy binary name — accepted as an alias, and used as the
    /// output basename so regenerated artifacts land on the checked-in
    /// `results/` paths.
    pub legacy_bin: &'static str,
    /// One-line description for `repro list`.
    pub summary: &'static str,
    /// How the figure runs.
    pub kind: FigureKind,
}

/// Matrix (spec + renderer) or custom (procedure) execution.
#[derive(Debug)]
pub enum FigureKind {
    /// A declarative run matrix.
    Matrix {
        /// Builds the figure's spec.
        spec: fn() -> ExperimentSpec,
        /// Renders collected cells into the legacy text and table.
        render: Renderer,
        /// Whether the legacy binary also wrote a CSV of the table.
        csv: bool,
    },
    /// A procedure that cannot be expressed as a cell matrix.
    Custom(CustomFn),
}

/// Renders a completed matrix into the report text and record table.
pub type Renderer = fn(&ExperimentSpec, &TierParams, &MatrixData) -> Rendered;

/// Runs a custom figure end-to-end.
pub type CustomFn = fn(&CliArgs) -> CustomOutput;

/// A renderer's output.
#[derive(Debug)]
pub struct Rendered {
    /// Exact stdout text of the figure (legacy-compatible).
    pub text: String,
    /// The table, machine-readable, for the `RunRecord`.
    pub table: Table,
}

/// A custom figure's output.
#[derive(Debug)]
pub struct CustomOutput {
    /// Exact stdout text of the figure (legacy-compatible).
    pub text: String,
    /// The headline table for the `RunRecord`.
    pub table: Table,
    /// Structured per-row values for the `RunRecord`.
    pub cells: Vec<CellRecord>,
    /// Backend tag recorded in the `RunRecord`.
    pub backend: &'static str,
}

/// Every figure, in EXPERIMENTS.md presentation order.
pub fn all() -> &'static [FigureDef] {
    &FIGURES
}

/// Resolves a figure by canonical name or legacy binary name.
pub fn find(name: &str) -> Option<&'static FigureDef> {
    FIGURES.iter().find(|d| d.name == name || d.legacy_bin == name)
}

/// The canonical figure names.
pub fn names() -> Vec<&'static str> {
    FIGURES.iter().map(|d| d.name).collect()
}

static FIGURES: [FigureDef; 21] = [
    FigureDef {
        name: "fig04",
        legacy_bin: "fig04_heatmap",
        summary: "hidden-layer weight heatmap of the 4x4 synthetic agent",
        kind: FigureKind::Custom(fig04),
    },
    FigureDef {
        name: "fig05",
        legacy_bin: "fig05_synthetic",
        summary: "synthetic-mesh latency, four policies, normalized to Global-age",
        kind: FigureKind::Matrix { spec: spec_fig05, render: render_fig05, csv: false },
    },
    FigureDef {
        name: "fig07",
        legacy_bin: "fig07_apu_heatmap",
        summary: "hidden-layer weight heatmap of the APU (bfs) agent",
        kind: FigureKind::Custom(fig07),
    },
    FigureDef {
        name: "fig09",
        legacy_bin: "fig09_avg_exec",
        summary: "normalized average execution time across the nine workloads",
        kind: FigureKind::Matrix { spec: spec_fig09, render: render_fig09, csv: true },
    },
    FigureDef {
        name: "fig10",
        legacy_bin: "fig10_tail_exec",
        summary: "normalized tail execution time across the nine workloads",
        kind: FigureKind::Matrix { spec: spec_fig10, render: render_fig10, csv: true },
    },
    FigureDef {
        name: "fig11",
        legacy_bin: "fig11_mixed",
        summary: "mixed-application scenarios, normalized avg execution time",
        kind: FigureKind::Matrix { spec: spec_fig11, render: render_fig11, csv: true },
    },
    FigureDef {
        name: "fig12",
        legacy_bin: "fig12_rewards",
        summary: "training curves under the three reward functions",
        kind: FigureKind::Custom(fig12),
    },
    FigureDef {
        name: "fig13",
        legacy_bin: "fig13_features",
        summary: "training curves per feature set, plus hill-climbing selection",
        kind: FigureKind::Custom(fig13),
    },
    FigureDef {
        name: "table3",
        legacy_bin: "table3_synthesis",
        summary: "analytical 32nm synthesis results (latency/area/power)",
        kind: FigureKind::Custom(table3_figure),
    },
    FigureDef {
        name: "load_sweep",
        legacy_bin: "load_sweep",
        summary: "latency vs offered load, 4x4 uniform random",
        kind: FigureKind::Matrix { spec: spec_load_sweep, render: render_load_sweep, csv: true },
    },
    FigureDef {
        name: "extended_policies",
        legacy_bin: "extended_policies",
        summary: "every policy in the library on one synthetic and one APU workload",
        kind: FigureKind::Matrix {
            spec: spec_extended_policies,
            render: render_extended_policies,
            csv: false,
        },
    },
    FigureDef {
        name: "ablation_defeature",
        legacy_bin: "ablation_defeature",
        summary: "Algorithm 2 with the port / message-type conditions removed",
        kind: FigureKind::Matrix {
            spec: spec_ablation_defeature,
            render: render_ablation_defeature,
            csv: false,
        },
    },
    FigureDef {
        name: "ablation_routing",
        legacy_bin: "ablation_routing",
        summary: "policy ordering under X-Y vs west-first adaptive routing",
        kind: FigureKind::Matrix {
            spec: spec_ablation_routing,
            render: render_ablation_routing,
            csv: false,
        },
    },
    FigureDef {
        name: "ablation_hparams",
        legacy_bin: "ablation_hparams",
        summary: "agent hyperparameter ablation (paper vs tuned values)",
        kind: FigureKind::Custom(ablation_hparams),
    },
    FigureDef {
        name: "ablation_multi_agent",
        legacy_bin: "ablation_multi_agent",
        summary: "one shared agent vs one agent per quadrant",
        kind: FigureKind::Custom(ablation_multi_agent),
    },
    FigureDef {
        name: "starvation_check",
        legacy_bin: "starvation_check",
        summary: "starvation under feasible hotspot traffic (§6.4)",
        kind: FigureKind::Matrix {
            spec: spec_starvation_check,
            render: render_starvation_check,
            csv: false,
        },
    },
    FigureDef {
        name: "resilience",
        legacy_bin: "resilience",
        summary: "graceful degradation under deterministic fault injection",
        kind: FigureKind::Matrix {
            spec: spec_resilience,
            render: render_resilience,
            csv: true,
        },
    },
    FigureDef {
        name: "selfheal",
        legacy_bin: "selfheal",
        summary: "self-healing: frozen vs online arbitration x static vs learned buffers x fault intensity",
        kind: FigureKind::Matrix {
            spec: spec_selfheal,
            render: render_selfheal,
            csv: true,
        },
    },
    FigureDef {
        name: "conformance",
        legacy_bin: "conformance",
        summary: "randomized invariant-checker conformance sweep over both simulators",
        kind: FigureKind::Custom(super::conformance::run),
    },
    FigureDef {
        name: "routing",
        legacy_bin: "routing",
        summary: "routing x topology x fault-intensity sweep (mesh/torus/ring/degraded)",
        kind: FigureKind::Matrix {
            spec: spec_routing,
            render: render_routing,
            csv: true,
        },
    },
    FigureDef {
        name: "search",
        legacy_bin: "search",
        summary: "design-space search (--driver hc|evo|random, --budget N): pareto front",
        kind: FigureKind::Custom(super::search::search_figure),
    },
];

fn mk_table(headers: &[&str], rows: Vec<Vec<String>>) -> Table {
    Table {
        headers: headers.iter().map(|h| h.to_string()).collect(),
        rows,
    }
}

// --------------------------------------------------------------------
// Matrix figure specs
// --------------------------------------------------------------------

fn spec_fig05() -> ExperimentSpec {
    ExperimentSpec {
        figure: "fig05".into(),
        output: "fig05_synthetic".into(),
        title: "Fig. 5: message latency, uniform random (normalized to Global-age)".into(),
        lineup: Lineup::parse(&["fifo", "rl-synth-4x4", "nn", "global-age"]),
        nn: Some(NnRecipe::SyntheticPerScenario),
        scenarios: vec![
            ScenarioSpec::Synthetic {
                label: "4x4".into(),
                width: 4,
                height: 4,
                pattern: Pattern::UniformRandom,
                rate: 0.40,
                topo: TopoSpec::Mesh,
                routing: RoutingKind::XY,
                starvation_threshold: None,
                noc: None,
                lineup: None,
            },
            ScenarioSpec::Synthetic {
                label: "8x8".into(),
                width: 8,
                height: 8,
                pattern: Pattern::UniformRandom,
                rate: 0.20,
                topo: TopoSpec::Mesh,
                routing: RoutingKind::XY,
                starvation_threshold: None,
                noc: None,
                // The distilled policy has a per-mesh variant (§3.2).
                lineup: Some(Lineup::parse(&["fifo", "rl-synth-8x8", "nn", "global-age"])),
            },
        ],
        faults: None,
        quick: TierParams {
            warmup: 1_000,
            measure: 6_000,
            nn_epochs: 8,
            nn_epoch_cycles: 1_000,
            ..TierParams::zeroed()
        },
        full: TierParams {
            warmup: 5_000,
            measure: 40_000,
            nn_epochs: 60,
            nn_epoch_cycles: 2_000,
            ..TierParams::zeroed()
        },
        normalize: Normalize::Last,
    }
}

fn apu_workload_scenarios() -> Vec<ScenarioSpec> {
    Benchmark::ALL
        .iter()
        .map(|b| ScenarioSpec::ApuWorkload { benchmark: b.name().to_string() })
        .collect()
}

fn spec_apu_normalized(figure: &str, output: &str, title: &str, nn_repeats_full: usize) -> ExperimentSpec {
    ExperimentSpec {
        figure: figure.into(),
        output: output.into(),
        title: title.into(),
        lineup: Lineup::parse(&[
            "round-robin",
            "islip",
            "fifo",
            "probdist",
            "rl-apu",
            "nn",
            "global-age",
        ]),
        nn: Some(NnRecipe::ApuBenchmark { benchmark: "bfs".into() }),
        scenarios: apu_workload_scenarios(),
        faults: None,
        quick: TierParams {
            max_cycles: 4_000_000,
            seeds: 2,
            apu_scale: 0.08,
            nn_repeats: 1,
            ..TierParams::zeroed()
        },
        full: TierParams {
            max_cycles: 4_000_000,
            seeds: 4,
            apu_scale: 0.5,
            nn_repeats: nn_repeats_full,
            ..TierParams::zeroed()
        },
        normalize: Normalize::Last,
    }
}

fn spec_fig09() -> ExperimentSpec {
    spec_apu_normalized(
        "fig09",
        "fig09_avg_exec",
        "Fig. 9: normalized average execution time (global-age = 1.0)",
        3,
    )
}

fn spec_fig10() -> ExperimentSpec {
    spec_apu_normalized(
        "fig10",
        "fig10_tail_exec",
        "Fig. 10: normalized tail execution time (global-age = 1.0)",
        3,
    )
}

fn spec_fig11() -> ExperimentSpec {
    let mut spec = spec_apu_normalized(
        "fig11",
        "fig11_mixed",
        "Fig. 11: mixed workloads, normalized avg execution time",
        2,
    );
    spec.scenarios = (0..=NUM_QUADRANTS).map(|n_low| ScenarioSpec::ApuMix { n_low }).collect();
    spec
}

fn spec_load_sweep() -> ExperimentSpec {
    ExperimentSpec {
        figure: "load_sweep".into(),
        output: "load_sweep".into(),
        title: "latency vs offered load, 4x4 uniform random".into(),
        lineup: Lineup::parse(&["round-robin", "fifo", "rl-synth-4x4", "global-age"]),
        nn: None,
        scenarios: (1..=11)
            .map(|i| {
                let rate = 0.05 * i as f64;
                ScenarioSpec::Synthetic {
                    label: format!("{rate:.2}"),
                    width: 4,
                    height: 4,
                    pattern: Pattern::UniformRandom,
                    rate,
                    topo: TopoSpec::Mesh,
                    routing: RoutingKind::XY,
                    starvation_threshold: None,
                    noc: None,
                    lineup: None,
                }
            })
            .collect(),
        faults: None,
        quick: TierParams { warmup: 1_000, measure: 4_000, ..TierParams::zeroed() },
        full: TierParams { warmup: 3_000, measure: 15_000, ..TierParams::zeroed() },
        normalize: Normalize::None,
    }
}

fn spec_extended_policies() -> ExperimentSpec {
    ExperimentSpec {
        figure: "extended_policies".into(),
        output: "extended_policies".into(),
        title: "extended policy comparison".into(),
        lineup: Lineup::parse(&[
            "random",
            "round-robin",
            "islip",
            "wavefront",
            "ping-pong",
            "fifo",
            "local-age",
            "probdist",
            "slack-aware",
            "rl-synth-4x4",
            "rl-apu",
            "algorithm2-paper",
            "global-age",
        ]),
        nn: None,
        scenarios: vec![
            ScenarioSpec::Synthetic {
                label: "4x4@0.42".into(),
                width: 4,
                height: 4,
                pattern: Pattern::UniformRandom,
                rate: 0.42,
                topo: TopoSpec::Mesh,
                routing: RoutingKind::XY,
                starvation_threshold: None,
                noc: None,
                lineup: None,
            },
            ScenarioSpec::ApuWorkload { benchmark: "spmv".into() },
        ],
        faults: None,
        quick: TierParams {
            warmup: 1_000,
            measure: 5_000,
            max_cycles: 4_000_000,
            apu_scale: 0.08,
            ..TierParams::zeroed()
        },
        full: TierParams {
            warmup: 3_000,
            measure: 20_000,
            max_cycles: 4_000_000,
            apu_scale: 0.5,
            ..TierParams::zeroed()
        },
        normalize: Normalize::None,
    }
}

fn spec_ablation_defeature() -> ExperimentSpec {
    ExperimentSpec {
        figure: "ablation_defeature".into(),
        output: "ablation_defeature".into(),
        title: "§5.1 ablation: avg execution time relative to full Algorithm 2".into(),
        lineup: Lineup::parse(&["rl-apu", "rl-apu-no-port", "rl-apu-no-msgtype"]),
        nn: None,
        scenarios: apu_workload_scenarios(),
        faults: None,
        quick: TierParams {
            max_cycles: 4_000_000,
            seeds: 2,
            apu_scale: 0.08,
            ..TierParams::zeroed()
        },
        full: TierParams {
            max_cycles: 4_000_000,
            seeds: 4,
            apu_scale: 0.5,
            ..TierParams::zeroed()
        },
        normalize: Normalize::First,
    }
}

fn spec_ablation_routing() -> ExperimentSpec {
    let base: [(&str, Pattern, f64); 3] = [
        ("uniform@0.40", Pattern::UniformRandom, 0.40),
        ("tornado@0.30", Pattern::Tornado, 0.30),
        (
            "hotspot@0.18",
            Pattern::Hotspot { node: NodeId(5), fraction: 0.04 },
            0.18,
        ),
    ];
    let mut scenarios = Vec::new();
    for (label, pattern, rate) in base {
        for (suffix, routing) in
            [("xy", RoutingKind::XY), ("adaptive", RoutingKind::WestFirstAdaptive)]
        {
            scenarios.push(ScenarioSpec::Synthetic {
                label: format!("{label} [{suffix}]"),
                width: 4,
                height: 4,
                pattern,
                rate,
                topo: TopoSpec::Mesh,
                routing,
                starvation_threshold: None,
                noc: None,
                lineup: None,
            });
        }
    }
    ExperimentSpec {
        figure: "ablation_routing".into(),
        output: "ablation_routing".into(),
        title: "routing ablation: X-Y vs west-first adaptive (4x4 mesh)".into(),
        lineup: Lineup::parse(&["fifo", "rl-synth-4x4", "global-age"]),
        nn: None,
        scenarios,
        faults: None,
        quick: TierParams { warmup: 1_000, measure: 5_000, ..TierParams::zeroed() },
        full: TierParams { warmup: 3_000, measure: 25_000, ..TierParams::zeroed() },
        normalize: Normalize::None,
    }
}

fn spec_starvation_check() -> ExperimentSpec {
    ExperimentSpec {
        figure: "starvation_check".into(),
        output: "starvation_check".into(),
        title: "§6.4 starvation check: feasible hotspot traffic, 8x8 mesh".into(),
        lineup: Lineup::parse(&["rl-apu", "global-age", "newest-first"]),
        nn: None,
        scenarios: vec![ScenarioSpec::Synthetic {
            label: "8x8 hotspot".into(),
            width: 8,
            height: 8,
            // Offered load at the hotspot ejection port stays below one
            // flit/cycle — feasible but hot; backlogs reflect policy, not
            // overload (see the legacy binary's derivation).
            pattern: Pattern::Hotspot { node: NodeId(27), fraction: 0.025 },
            rate: 0.18,
            topo: TopoSpec::Mesh,
            routing: RoutingKind::XY,
            starvation_threshold: Some(1_000),
            noc: None,
            lineup: None,
        }],
        // warmup 0: measure from cycle zero, ages accumulate unreset.
        faults: None,
        quick: TierParams { warmup: 0, measure: 20_000, ..TierParams::zeroed() },
        full: TierParams { warmup: 0, measure: 100_000, ..TierParams::zeroed() },
        normalize: Normalize::None,
    }
}

fn spec_resilience() -> ExperimentSpec {
    ExperimentSpec {
        figure: "resilience".into(),
        output: "resilience".into(),
        title: "resilience: graceful degradation under deterministic fault injection".into(),
        // No NN slot: the resilience sweep compares the distilled policies
        // and classic baselines so the quick smoke needs no training.
        lineup: Lineup::parse(&["round-robin", "fifo", "rl-synth-4x4", "global-age"]),
        nn: None,
        scenarios: vec![ScenarioSpec::Synthetic {
            label: "4x4".into(),
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            rate: 0.30,
            topo: TopoSpec::Mesh,
            routing: RoutingKind::XY,
            starvation_threshold: None,
            noc: None,
            lineup: None,
        }],
        // Intensity i generates round(i x num_mesh_links) fault events;
        // 0.0 is the fault-free reference row.
        faults: Some(FaultAxis { intensities: vec![0.0, 0.25, 0.5, 1.0], quiet_tail: 0.0, post_warmup: false }),
        quick: TierParams { warmup: 500, measure: 4_000, ..TierParams::zeroed() },
        full: TierParams {
            warmup: 3_000,
            measure: 20_000,
            seeds: 3,
            ..TierParams::zeroed()
        },
        normalize: Normalize::None,
    }
}

fn spec_selfheal() -> ExperimentSpec {
    ExperimentSpec {
        figure: "selfheal".into(),
        output: "selfheal".into(),
        title: "self-healing: online learning and learned VC buffer control under faults"
            .into(),
        // The 2x2 of the two learned decision points, all warm-started
        // from one trained artifact: frozen vs online arbitration x
        // static vs learned buffers. The frozen "nn" column is the
        // zero-learning baseline the recovery columns are read against.
        lineup: Lineup::parse(&["nn", "nn-online", "nn-vcctl", "nn-online-vcctl"]),
        nn: Some(NnRecipe::SyntheticPerScenario),
        scenarios: vec![ScenarioSpec::Synthetic {
            label: "4x4".into(),
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            // Below saturation: under faults the network must still be
            // able to drain, or no policy can ever recover (the latency
            // EMA sits pinned at its congested plateau and the recovery
            // column saturates at the unrecovered penalty).
            rate: 0.15,
            topo: TopoSpec::Mesh,
            routing: RoutingKind::XY,
            starvation_threshold: None,
            noc: None,
            lineup: None,
        }],
        // Intensity i generates round(i x num_mesh_links) fault events;
        // 0.0 is the fault-free sanity row (online learning should not
        // hurt a healthy network).
        faults: Some(FaultAxis {
            intensities: vec![0.0, 0.3, 0.6],
            quiet_tail: 0.5,
            post_warmup: true,
        }),
        quick: TierParams {
            warmup: 500,
            measure: 4_000,
            // Online-vs-frozen recovery deltas are ~1-2% of the window;
            // a single seed's fluctuation is the same order, so even the
            // quick tier averages three seeds per cell.
            seeds: 3,
            nn_epochs: 8,
            nn_epoch_cycles: 1_000,
            ..TierParams::zeroed()
        },
        full: TierParams {
            warmup: 3_000,
            measure: 20_000,
            seeds: 3,
            nn_epochs: 60,
            nn_epoch_cycles: 2_000,
            ..TierParams::zeroed()
        },
        normalize: Normalize::None,
    }
}

fn spec_routing() -> ExperimentSpec {
    // One row group per (routing, topology) pair, all at 16 routers with
    // one core each so rows are comparable. X-Y and table routing share
    // the mesh rows as a baseline; the torus/ring rows show the wraparound
    // gain; the degraded row exercises table routing around missing links.
    let pairs: [(&str, TopoSpec, RoutingKind); 5] = [
        ("xy@mesh", TopoSpec::Mesh, RoutingKind::XY),
        ("table@mesh", TopoSpec::Mesh, RoutingKind::TableShortest),
        ("torus@torus", TopoSpec::Torus, RoutingKind::TorusDimOrder),
        ("ring@ring", TopoSpec::Ring, RoutingKind::RingShortest),
        (
            "table@degraded",
            TopoSpec::DegradedMesh { seed: 9, drop_percent: 25 },
            RoutingKind::TableShortest,
        ),
    ];
    let scenarios = pairs
        .into_iter()
        .map(|(label, topo, routing)| ScenarioSpec::Synthetic {
            label: label.into(),
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            rate: 0.25,
            topo,
            routing,
            starvation_threshold: None,
            noc: None,
            lineup: None,
        })
        .collect();
    ExperimentSpec {
        figure: "routing".into(),
        output: "routing".into(),
        title: "routing x topology x fault-intensity sweep".into(),
        // No NN slot: classic policies only, so the quick smoke needs no
        // training (same reasoning as the resilience figure).
        lineup: Lineup::parse(&["round-robin", "fifo", "global-age"]),
        nn: None,
        scenarios,
        // 0.0 is the fault-free reference; 0.5 stresses each graph with
        // round(0.5 x num_links) fault events drawn on its own link set.
        faults: Some(FaultAxis { intensities: vec![0.0, 0.5], quiet_tail: 0.0, post_warmup: false }),
        quick: TierParams { warmup: 500, measure: 4_000, ..TierParams::zeroed() },
        full: TierParams {
            warmup: 3_000,
            measure: 20_000,
            seeds: 3,
            ..TierParams::zeroed()
        },
        normalize: Normalize::None,
    }
}

// --------------------------------------------------------------------
// Matrix figure renderers
// --------------------------------------------------------------------

fn render_fig05(spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    let mut text = String::from(
        "== Fig. 5: message latency, uniform random (normalized to Global-age) ==\n\n",
    );
    let headers = ["policy", "avg (cyc)", "avg norm", "p99 (cyc)", "p99 norm", "max"];
    let mut record_rows = Vec::new();
    for (scenario, sc) in spec.scenarios.iter().zip(&data.scenarios) {
        let ScenarioSpec::Synthetic { width, height, rate, .. } = scenario else {
            unreachable!("fig05 scenarios are synthetic")
        };
        let n = sc.canonical.len();
        let avgs: Vec<f64> = (0..n).map(|p| sc.cell(0, p).metric("avg_latency")).collect();
        let p99s: Vec<f64> = (0..n).map(|p| sc.cell(0, p).metric("p99_latency")).collect();
        let (ga_avg, ga_p99) = (*avgs.last().unwrap(), *p99s.last().unwrap());
        let rows: Vec<Vec<String>> = (0..n)
            .map(|p| {
                let max = sc.cell(0, p).metric("max_latency");
                vec![
                    sc.display[p].clone(),
                    format!("{:.1}", avgs[p]),
                    format!("{:.2}", avgs[p] / ga_avg),
                    format!("{:.0}", p99s[p]),
                    format!("{:.2}", p99s[p] / ga_p99),
                    format!("{max}"),
                ]
            })
            .collect();
        text.push_str(&format!("{width}x{height} mesh @ injection rate {rate}:\n"));
        text.push_str(&render_table(&headers, &rows));
        text.push('\n');
        for row in rows {
            let mut r = vec![sc.label.clone()];
            r.extend(row);
            record_rows.push(r);
        }
    }
    let mut rec_headers = vec!["mesh"];
    rec_headers.extend(headers);
    Rendered { text, table: mk_table(&rec_headers, record_rows) }
}

/// Shared Fig. 9 / Fig. 10 renderer: per-workload values of `metric`
/// normalized to the last (Global-age) column, plus a geomean row.
fn render_apu_normalized(metric: &str, title: &str, first_col: &str, data: &MatrixData) -> Rendered {
    let n_policies = data.scenarios[0].canonical.len();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); n_policies];
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        let values = sc.means(metric);
        let reference = *values.last().unwrap();
        let mut row = vec![sc.label.clone()];
        for (i, v) in values.iter().enumerate() {
            per_policy[i].push(v / reference);
            row.push(format!("{:.3}", v / reference));
        }
        rows.push(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(per_policy.iter().map(|v| format!("{:.3}", geomean(v))));
    rows.push(gm_row);

    let mut headers = vec![first_col];
    let display = &data.scenarios[0].display;
    headers.extend(display.iter().map(String::as_str));
    let text = format!("\n== {title} ==\n\n{}\n", render_table(&headers, &rows));
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_fig09(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    render_apu_normalized(
        "avg_exec",
        "Fig. 9: normalized average execution time (global-age = 1.0)",
        "workload",
        data,
    )
}

fn render_fig10(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    render_apu_normalized(
        "tail_exec",
        "Fig. 10: normalized tail execution time (global-age = 1.0)",
        "workload",
        data,
    )
}

fn render_fig11(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        let values = sc.means("avg_exec");
        let reference = *values.last().unwrap();
        let mut row = vec![sc.label.clone()];
        row.extend(values.iter().map(|v| format!("{:.3}", v / reference)));
        rows.push(row);
    }
    let mut headers = vec!["mix"];
    headers.extend(data.scenarios[0].display.iter().map(String::as_str));
    let text = format!(
        "\n== Fig. 11: mixed workloads, normalized avg execution time ==\n\n{}\n",
        render_table(&headers, &rows)
    );
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_load_sweep(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    let mut headers: Vec<String> = vec!["rate".into()];
    for name in &data.scenarios[0].canonical {
        headers.push(format!("{name} avg"));
        headers.push(format!("{name} p99"));
    }
    let rows: Vec<Vec<String>> = data
        .scenarios
        .iter()
        .map(|sc| {
            let mut row = vec![sc.label.clone()];
            for p in 0..sc.canonical.len() {
                let c = sc.cell(0, p);
                row.push(format!("{:.1}", c.metric("avg_latency")));
                row.push(format!("{}", c.metric("p99_latency")));
            }
            row
        })
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let text = format!(
        "\n== latency vs offered load, 4x4 uniform random ==\n\n{}\n",
        render_table(&header_refs, &rows)
    );
    Rendered { text, table: mk_table(&header_refs, rows) }
}

fn render_extended_policies(
    _spec: &ExperimentSpec,
    _params: &TierParams,
    data: &MatrixData,
) -> Rendered {
    let syn = &data.scenarios[0];
    let apu = &data.scenarios[1];
    let rows: Vec<Vec<String>> = (0..syn.canonical.len())
        .map(|p| {
            let s = syn.cell(0, p);
            let r = apu.cell(0, p);
            vec![
                syn.canonical[p].clone(),
                format!("{:.1}", s.metric("avg_latency")),
                format!("{}", s.metric("p99_latency")),
                format!("{:.3}", s.metric("jain_fairness")),
                format!("{:.0}", r.metric("avg_exec")),
                format!("{}", r.metric("tail_exec")),
            ]
        })
        .collect();
    let headers = ["policy", "syn avg", "syn p99", "syn jain", "apu avg exec", "apu tail"];
    let text = format!(
        "\n== extended policy comparison ==\n(synthetic: 4x4 uniform random @ 0.42; APU: spmv x 4 copies)\n\n{}\n",
        render_table(&headers, &rows)
    );
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_ablation_defeature(
    _spec: &ExperimentSpec,
    _params: &TierParams,
    data: &MatrixData,
) -> Rendered {
    let n_variants = data.scenarios[0].canonical.len();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        let values = sc.means("avg_exec");
        let full = values[0];
        let mut row = vec![sc.label.clone()];
        for (i, v) in values.iter().enumerate() {
            ratios[i].push(v / full);
            row.push(format!("{:.3}", v / full));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for r in &ratios {
        gm.push(format!("{:.3}", geomean(r)));
    }
    rows.push(gm);
    // The de-featured terms matter most where the NoC is actually
    // contended, so also report the high-injection subset.
    let hi_idx: Vec<usize> = Benchmark::ALL
        .iter()
        .enumerate()
        .filter(|(_, b)| b.injection_class() == InjectionClass::High)
        .map(|(i, _)| i)
        .collect();
    let mut gm_hi = vec!["geomean (high-inj)".to_string()];
    for r in &ratios {
        let subset: Vec<f64> = hi_idx.iter().map(|&i| r[i]).collect();
        gm_hi.push(format!("{:.3}", geomean(&subset)));
    }
    rows.push(gm_hi);

    let headers = ["workload", "full", "no-port", "no-msgtype"];
    let text = format!(
        "\n== §5.1 ablation: avg execution time relative to full Algorithm 2 ==\n\n{}\n",
        render_table(&headers, &rows)
    );
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_ablation_routing(
    _spec: &ExperimentSpec,
    _params: &TierParams,
    data: &MatrixData,
) -> Rendered {
    let mut rows = Vec::new();
    for pair in data.scenarios.chunks(2) {
        let (xy, adaptive) = (&pair[0], &pair[1]);
        let base = xy.label.split(" [").next().unwrap().to_string();
        for p in 0..xy.canonical.len() {
            let x = xy.cell(0, p);
            let a = adaptive.cell(0, p);
            rows.push(vec![
                base.clone(),
                xy.canonical[p].clone(),
                format!("{:.1}", x.metric("avg_latency")),
                format!("{}", x.metric("p99_latency")),
                format!("{:.1}", a.metric("avg_latency")),
                format!("{}", a.metric("p99_latency")),
            ]);
        }
    }
    let headers = ["scenario", "policy", "xy avg", "xy p99", "adaptive avg", "adaptive p99"];
    let text = format!(
        "\n== routing ablation: X-Y vs west-first adaptive (4x4 mesh) ==\n\n{}\n",
        render_table(&headers, &rows)
    );
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_starvation_check(
    _spec: &ExperimentSpec,
    params: &TierParams,
    data: &MatrixData,
) -> Rendered {
    let cycles = params.measure;
    let names = [
        "RL-inspired (distilled, with starvation clause)",
        "Global-age (oracle)",
        "Newest-first (adversarial control)",
    ];
    let sc = &data.scenarios[0];
    let mut text = format!(
        "== §6.4 starvation check: feasible hotspot traffic, 8x8 mesh, {cycles} cycles ==\n\n"
    );
    let mut rows = Vec::new();
    for (p, name) in names.into_iter().enumerate() {
        let c = sc.cell(0, p);
        let (max_age, starving) = (c.metric("max_local_age"), c.metric("starving_packets"));
        let (p999, max_lat) = (c.metric("p999_latency"), c.metric("max_latency"));
        text.push_str(&format!("{name}:\n"));
        text.push_str(&format!("  max local age seen            : {max_age}\n"));
        text.push_str(&format!("  packets starving (> 1000 cyc) : {starving}\n"));
        text.push_str(&format!("  p99.9 / max delivered latency : {p999} / {max_lat}\n\n"));
        rows.push(vec![
            sc.canonical[p].clone(),
            format!("{max_age}"),
            format!("{starving}"),
            format!("{p999}"),
            format!("{max_lat}"),
        ]);
    }
    text.push_str("expected: newest-first starves (huge max age/latency); the\n");
    text.push_str("RL-inspired starvation clause keeps the tail bounded.\n");
    let headers = ["policy", "max local age", "starving", "p99.9", "max latency"];
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_resilience(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    let headers = [
        "scenario", "policy", "avg lat", "p99 lat", "throughput", "jain", "delivered",
        "drops", "wedged",
    ];
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        for p in 0..sc.canonical.len() {
            rows.push(vec![
                sc.label.clone(),
                sc.display[p].clone(),
                format!("{:.1}", sc.mean(p, "avg_latency")),
                format!("{:.0}", sc.mean(p, "p99_latency")),
                format!("{:.4}", sc.mean(p, "throughput")),
                format!("{:.3}", sc.mean(p, "jain_fairness")),
                format!("{:.0}", sc.mean(p, "delivered")),
                format!("{:.0}", sc.mean(p, "link_fault_drops")),
                format!("{:.0}", sc.mean(p, "wedged_ports")),
            ]);
        }
    }
    let mut text = String::from(
        "== resilience: graceful degradation under deterministic fault injection ==\n\n",
    );
    for sc in &data.scenarios {
        if let Some(hash) = &sc.fault_plan_hash {
            text.push_str(&format!(
                "{}: intensity {:.2}, fault plan {hash}\n",
                sc.label, sc.fault_intensity
            ));
        } else {
            text.push_str(&format!("{}: fault-free reference\n", sc.label));
        }
    }
    text.push('\n');
    text.push_str(&render_table(&headers, &rows));
    text.push('\n');
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_selfheal(_spec: &ExperimentSpec, params: &TierParams, data: &MatrixData) -> Rendered {
    let headers = [
        "scenario", "policy", "avg lat", "p99 lat", "recovery (cyc)", "post-fault lat",
        "onsets", "recovered", "delivered",
    ];
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        for p in 0..sc.canonical.len() {
            rows.push(vec![
                sc.label.clone(),
                sc.display[p].clone(),
                format!("{:.1}", sc.mean(p, "avg_latency")),
                format!("{:.0}", sc.mean(p, "p99_latency")),
                format!("{:.0}", sc.mean(p, "recovery_time")),
                format!("{:.1}", sc.mean(p, "post_fault_latency")),
                format!("{:.1}", sc.mean(p, "fault_onsets")),
                format!("{:.1}", sc.mean(p, "recoveries")),
                format!("{:.0}", sc.mean(p, "delivered")),
            ]);
        }
    }
    let mut text = String::from(
        "== self-healing: online learning and learned VC buffer control under faults ==\n\n",
    );
    for sc in &data.scenarios {
        if let Some(hash) = &sc.fault_plan_hash {
            text.push_str(&format!(
                "{}: intensity {:.2}, fault plan {hash}\n",
                sc.label, sc.fault_intensity
            ));
        } else {
            text.push_str(&format!("{}: fault-free reference\n", sc.label));
        }
    }
    text.push('\n');
    text.push_str(&render_table(&headers, &rows));
    text.push_str(&format!(
        "\nrecovery (cyc): mean cycles from fault onset until the latency EMA\nreturns to within 12.5% (plus an 8-cycle absolute slack) of its\npre-onset baseline; unrecovered onsets are charged the full {}-cycle\nmeasurement window. Lower is better; read online vs frozen within one\nintensity row group.\n",
        params.measure
    ));
    Rendered { text, table: mk_table(&headers, rows) }
}

fn render_routing(_spec: &ExperimentSpec, _params: &TierParams, data: &MatrixData) -> Rendered {
    let headers = [
        "scenario", "policy", "avg lat", "p99 lat", "throughput", "jain", "delivered",
        "drops", "wedged",
    ];
    let mut rows = Vec::new();
    for sc in &data.scenarios {
        for p in 0..sc.canonical.len() {
            rows.push(vec![
                sc.label.clone(),
                sc.display[p].clone(),
                format!("{:.1}", sc.mean(p, "avg_latency")),
                format!("{:.0}", sc.mean(p, "p99_latency")),
                format!("{:.4}", sc.mean(p, "throughput")),
                format!("{:.3}", sc.mean(p, "jain_fairness")),
                format!("{:.0}", sc.mean(p, "delivered")),
                format!("{:.0}", sc.mean(p, "link_fault_drops")),
                format!("{:.0}", sc.mean(p, "wedged_ports")),
            ]);
        }
    }
    let mut text =
        String::from("== routing x topology x fault-intensity sweep ==\n\n");
    for sc in &data.scenarios {
        if let Some(hash) = &sc.fault_plan_hash {
            text.push_str(&format!(
                "{}: intensity {:.2}, fault plan {hash}\n",
                sc.label, sc.fault_intensity
            ));
        } else {
            text.push_str(&format!("{}: fault-free reference\n", sc.label));
        }
    }
    text.push('\n');
    text.push_str(&render_table(&headers, &rows));
    text.push('\n');
    Rendered { text, table: mk_table(&headers, rows) }
}

// --------------------------------------------------------------------
// Custom figures (procedures the matrix cannot express)
// --------------------------------------------------------------------

fn fig04(args: &CliArgs) -> CustomOutput {
    // Train at a contended operating point with the tuned recipe — at
    // light load there is almost no arbitration and hence no signal.
    let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
    if args.quick {
        spec.curriculum = vec![(0.32, 4)];
        spec.epochs = 8;
        spec.cycles_per_epoch = 800;
    }
    rl_arb::progress!(
        "training agent: {} epochs x {} cycles on 4x4 uniform random ...",
        spec.epochs, spec.cycles_per_epoch
    );
    let outcome = train_synthetic(&spec);
    let hm = weight_heatmap(outcome.agent.network(), outcome.agent.encoder());

    let mut text = String::new();
    text.push_str("== Fig. 4: hidden-layer |weight| heatmap (4x4 mesh agent) ==\n");
    text.push_str("rows: features, columns: input buffers (port x VC); darker = larger\n\n");
    text.push_str(&format!("{}\n", hm.to_ascii()));
    text.push_str("feature importance (mean |w| across all buffers):\n");
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (row, mean) in hm.ranked_rows() {
        text.push_str(&format!("  {:>14}: {:.4}\n", hm.row_labels[row], mean));
        rows.push(vec![hm.row_labels[row].clone(), format!("{mean:.4}")]);
        cells.push(CellRecord {
            scenario: "4x4-agent".into(),
            policy: hm.row_labels[row].clone(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![("mean_abs_weight".into(), mean)],
        });
    }
    text.push_str(&format!("\ncsv:\n{}\n", hm.to_csv()));
    text.push_str(&format!(
        "training curve (avg latency per epoch): {:?}\n",
        outcome.curve.iter().map(|l| (l * 10.0).round() / 10.0).collect::<Vec<_>>()
    ));
    CustomOutput {
        text,
        table: mk_table(&["feature", "mean |w|"], rows),
        cells,
        backend: "synthetic",
    }
}

fn fig07(args: &CliArgs) -> CustomOutput {
    let scale = args.apu_scale();
    let repeats = if args.quick { 1 } else { 3 };
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    rl_arb::progress!("training agent on bfs x{repeats} (scale {scale}) ...");
    let agent = train_apu_agent(specs, repeats, 2_000_000, args.seed);
    let hm = weight_heatmap(agent.network(), agent.encoder());

    let mut text = String::new();
    text.push_str("== Fig. 7: hidden-layer |weight| heatmap (APU agent, bfs) ==\n");
    text.push_str("rows: 12 feature entries, columns: 42 buffers (Core/Mem/N/S/W/E x 7 VCs)\n\n");
    text.push_str(&format!("{}\n", hm.to_ascii()));
    text.push_str("feature importance (mean |w| across buffers):\n");
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (row, mean) in hm.ranked_rows() {
        text.push_str(&format!("  {:>20}: {:.4}\n", hm.row_labels[row], mean));
        rows.push(vec![hm.row_labels[row].clone(), format!("{mean:.4}")]);
        cells.push(CellRecord {
            scenario: "apu-bfs-agent".into(),
            policy: hm.row_labels[row].clone(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![("mean_abs_weight".into(), mean)],
        });
    }
    text.push_str(&format!(
        "\nagent: {} decisions, {} explored, replay {} entries\n",
        agent.decisions(),
        agent.explored(),
        agent.replay_len()
    ));
    text.push_str(&format!("\ncsv:\n{}\n", hm.to_csv()));
    CustomOutput {
        text,
        table: mk_table(&["feature", "mean |w|"], rows),
        cells,
        backend: "apu",
    }
}

fn fig12(args: &CliArgs) -> CustomOutput {
    let (epochs, cycles) = if args.quick { (10, 800) } else { (50, 2_000) };
    let mut series = Vec::new();
    let mut cells = Vec::new();
    for reward in RewardKind::ALL {
        rl_arb::progress!("training with reward {} ...", reward.label());
        // Cold start at the edge of saturation (like the paper's Fig. 12,
        // whose y-axis starts near 1000 cycles): an agent that learns pulls
        // the network out of congestion; one that does not stays there.
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        spec.agent = spec.agent.with_reward(reward);
        let out = train_synthetic(&spec);
        let converged = out.converged(1.15);
        rl_arb::progress!(
            "  final latency {:.1}, best {:.1}, converged: {converged}",
            out.final_latency(),
            out.best_latency()
        );
        cells.push(CellRecord {
            scenario: "4x4@0.40".into(),
            policy: reward.label().to_string(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("final_latency".into(), out.final_latency()),
                ("best_latency".into(), out.best_latency()),
                ("converged".into(), if converged { 1.0 } else { 0.0 }),
            ],
        });
        series.push((reward.label().to_string(), out.curve));
    }
    let labels: Vec<String> = (1..=epochs).map(|e| e.to_string()).collect();
    let text = format!(
        "\n== Fig. 12: avg message latency (cycles) vs training epoch ==\n\n{}\n",
        render_series("epoch", &labels, &series)
    );
    CustomOutput {
        text,
        table: series_table("epoch", &labels, &series),
        cells,
        backend: "synthetic",
    }
}

fn fig13(args: &CliArgs) -> CustomOutput {
    let (epochs, cycles) = if args.quick { (8, 800) } else { (40, 2_000) };
    let variants: Vec<(&str, FeatureSet)> = vec![
        ("payload", FeatureSet::only(Feature::PayloadSize)),
        ("localage", FeatureSet::only(Feature::LocalAge)),
        ("distance", FeatureSet::only(Feature::Distance)),
        ("hop", FeatureSet::only(Feature::HopCount)),
        ("allfeature", FeatureSet::synthetic()),
    ];
    let mut series = Vec::new();
    let mut cells = Vec::new();
    for (name, features) in variants {
        rl_arb::progress!("training with features: {name} ...");
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        spec.features = features;
        let out = train_synthetic(&spec);
        cells.push(CellRecord {
            scenario: "4x4@0.40".into(),
            policy: name.to_string(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("final_latency".into(), out.final_latency()),
                ("best_latency".into(), out.best_latency()),
            ],
        });
        series.push((name.to_string(), out.curve));
    }
    let labels: Vec<String> = (1..=epochs).map(|e| e.to_string()).collect();
    let mut text = format!(
        "\n== Fig. 13: avg message latency (cycles) vs training epoch, per feature set ==\n\n{}\n",
        render_series("epoch", &labels, &series)
    );

    // §6.5: hill-climbing over the synthetic feature pool.
    rl_arb::progress!("hill-climbing feature selection ...");
    let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
    spec.curriculum = Vec::new();
    spec.epochs = if args.quick { 4 } else { 12 };
    spec.cycles_per_epoch = if args.quick { 600 } else { 1_500 };
    let result = hill_climb(
        &spec,
        &[Feature::PayloadSize, Feature::LocalAge, Feature::Distance, Feature::HopCount],
        0.02,
    );
    text.push_str("hill-climbing (§6.5) selected features, in adoption order:\n");
    for f in &result.selected {
        text.push_str(&format!("  {}\n", f.label()));
    }
    text.push_str(&format!("settled latency: {:.1} cycles\n", result.latency));
    text.push_str(&format!("evaluations performed: {}\n", result.history.len()));
    CustomOutput {
        text,
        table: series_table("epoch", &labels, &series),
        cells,
        backend: "synthetic",
    }
}

fn table3_figure(_args: &CliArgs) -> CustomOutput {
    let tech = hw_cost::TechNode::nm32();
    let rows = hw_cost::table3(&tech);
    let mut cells = Vec::new();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            cells.push(CellRecord {
                scenario: "32nm".into(),
                policy: r.design.clone(),
                seed: 0,
                artifact: None,
                fault_plan: None,
                cell_hash: None,
                cache: None,
                metrics: vec![
                    ("latency_ns".into(), r.report.latency_ns),
                    ("area_mm2".into(), r.report.area_mm2),
                    ("power_mw".into(), r.report.power_mw),
                    ("meets_timing".into(), if r.report.meets_timing { 1.0 } else { 0.0 }),
                ],
            });
            vec![
                r.design.clone(),
                format!("{:.2}", r.report.latency_ns),
                format!("{:.4}", r.report.area_mm2),
                format!("{:.2}", r.report.power_mw),
                if r.report.meets_timing { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    let headers = ["design", "latency (ns)", "area (mm^2)", "power (mW)", "meets 1GHz"];
    let mut text = String::from("== Table 3: synthesis results (analytical 32nm model) ==\n\n");
    text.push_str(&format!("{}\n", render_table(&headers, &table_rows)));
    let (p, m) = hw_cost::rl_inspired_latency_split(42, &tech);
    text.push_str(&format!(
        "proposed arbiter latency split: {p:.2} ns priority + {m:.2} ns select-max\n"
    ));
    text.push_str("(paper: 8.17/1.2344/63.67 NN; 0.89/0.0012/0.07 RR; 1.10/0.0044/0.27 proposed)\n");
    CustomOutput {
        text,
        table: mk_table(&headers, table_rows),
        cells,
        backend: "analytical",
    }
}

fn ablation_hparams(args: &CliArgs) -> CustomOutput {
    let (epochs, cycles) = if args.quick { (12, 800) } else { (50, 2_000) };
    let variants: Vec<(&str, AgentConfig)> = vec![
        ("paper (lr.001 g.9 e.001 b2)", AgentConfig::paper_synthetic(args.seed)),
        ("tuned (lr.05 g.2 e.05 b16)", AgentConfig::tuned_synthetic(args.seed)),
        ("tuned, gamma=0.9", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.gamma = 0.9;
            c
        }),
        ("tuned, gamma=0.0", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.gamma = 0.0;
            c
        }),
        ("tuned, lr=0.001", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.lr = 0.001;
            c
        }),
        ("tuned, batch=2", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.batch_size = 2;
            c
        }),
        ("tuned, eps=0.001", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.epsilon = 0.001;
            c
        }),
        ("tuned + double DQN", AgentConfig::tuned_synthetic(args.seed).with_double_dqn(true)),
        (
            "tuned + prioritized (a=0.6)",
            AgentConfig::tuned_synthetic(args.seed).with_prioritized(0.6),
        ),
    ];

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (name, agent) in variants {
        rl_arb::progress!("training: {name} ...");
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.agent = agent;
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        let out = train_synthetic(&spec);
        let acc = out.agent.cumulative_reward() / out.agent.decisions().max(1) as f64;
        let tail = &out.curve[out.curve.len() - out.curve.len() / 4..];
        let settled = tail.iter().sum::<f64>() / tail.len() as f64;
        cells.push(CellRecord {
            scenario: "4x4@0.40".into(),
            policy: name.to_string(),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("settled_latency".into(), settled),
                ("best_epoch_latency".into(), out.best_latency()),
                ("oracle_accuracy".into(), acc),
            ],
        });
        rows.push(vec![
            name.to_string(),
            format!("{settled:.1}"),
            format!("{:.1}", out.best_latency()),
            format!("{acc:.3}"),
        ]);
    }
    let headers = ["configuration", "settled latency", "best epoch", "oracle acc"];
    let mut text =
        format!("\n== hyperparameter ablation: training on 4x4 @ 0.40 ==\n\n{}\n", render_table(&headers, &rows));
    text.push_str("the paper's published values do not converge in this substrate;\n");
    text.push_str("the decisive change is the discount factor (see DESIGN.md).\n");
    CustomOutput { text, table: mk_table(&headers, rows), cells, backend: "synthetic" }
}

fn ablation_multi_agent(args: &CliArgs) -> CustomOutput {
    let scale = args.apu_scale();
    let repeats = if args.quick { 1 } else { 3 };
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    let cfg = SimConfig::apu(APU_MESH, APU_MESH);
    let encoder = StateEncoder::new(6, cfg.num_vnets, FeatureSet::full(), cfg.feature_bounds);

    rl_arb::progress!("training single shared agent ...");
    let single = DqnAgent::new(encoder.clone(), AgentConfig::tuned_apu(args.seed)).into_shared();
    for rep in 0..repeats {
        let mut sim = make_apu_sim(
            specs.clone(),
            Box::new(single.training_arbiter()),
            EngineConfig::default(),
            args.seed.wrapping_add(rep),
        );
        sim.run_until_done(4_000_000);
    }
    let single_agent = single.into_inner();
    let single_acc = single_agent.cumulative_reward() / single_agent.decisions().max(1) as f64;

    rl_arb::progress!("training four per-quadrant agents ...");
    let apu = apu_sim::ApuTopology::build();
    let partition =
        PartitionedAgents::by_quadrant(apu.topology(), &encoder, &AgentConfig::tuned_apu(args.seed));
    for rep in 0..repeats {
        let mut sim = make_apu_sim(
            specs.clone(),
            Box::new(partition.training_arbiter()),
            EngineConfig::default(),
            args.seed.wrapping_add(rep),
        );
        sim.run_until_done(4_000_000);
    }
    let quad_agents = partition.into_agents();

    let mut cells = vec![CellRecord {
        scenario: "apu-bfs".into(),
        policy: "single shared".into(),
        seed: args.seed,
        artifact: None,
        fault_plan: None,
        cell_hash: None,
        cache: None,
        metrics: vec![
            ("decisions".into(), single_agent.decisions() as f64),
            ("oracle_accuracy".into(), single_acc),
        ],
    }];
    let mut rows = vec![vec![
        "single shared".to_string(),
        format!("{}", single_agent.decisions()),
        format!("{single_acc:.3}"),
    ]];
    for (q, a) in quad_agents.iter().enumerate() {
        let acc = a.cumulative_reward() / a.decisions().max(1) as f64;
        cells.push(CellRecord {
            scenario: "apu-bfs".into(),
            policy: format!("quadrant {q}"),
            seed: args.seed,
            artifact: None,
            fault_plan: None,
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("decisions".into(), a.decisions() as f64),
                ("oracle_accuracy".into(), acc),
            ],
        });
        rows.push(vec![format!("quadrant {q}"), format!("{}", a.decisions()), format!("{acc:.3}")]);
    }
    let headers = ["agent", "decisions", "oracle accuracy"];
    let mut text =
        format!("\n== multi-agent ablation: bfs training on the APU ==\n\n{}\n", render_table(&headers, &rows));
    text.push_str("per-quadrant agents see a quarter of the data each; with the\n");
    text.push_str("quadrant-symmetric workload their accuracies match the shared\n");
    text.push_str("agent's, supporting the paper's 'not fundamental' remark.\n");
    CustomOutput { text, table: mk_table(&headers, rows), cells, backend: "apu" }
}

/// Builds the machine-readable form of a [`render_series`] table.
fn series_table(title: &str, labels: &[String], series: &[(String, Vec<f64>)]) -> Table {
    let mut headers = vec![title.to_string()];
    headers.extend(series.iter().map(|(name, _)| name.clone()));
    let rows = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let mut row = vec![label.clone()];
            for (_, values) in series {
                row.push(values.get(i).map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()));
            }
            row
        })
        .collect();
    Table { headers, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::Tier;

    #[test]
    fn registry_names_are_unique_and_resolve() {
        let mut seen = std::collections::HashSet::new();
        for def in all() {
            assert!(seen.insert(def.name), "duplicate figure name {}", def.name);
            assert!(find(def.name).is_some());
            assert!(find(def.legacy_bin).is_some());
        }
        assert_eq!(all().len(), 21);
    }

    /// Every (topology, routing) pair in the routing figure is mutually
    /// compatible and builds a connected graph at its scenario scale.
    #[test]
    fn routing_figure_pairs_are_compatible() {
        let FigureKind::Matrix { spec, .. } = &find("routing").unwrap().kind else {
            panic!("routing should be a matrix figure")
        };
        let s = spec();
        assert_eq!(s.scenarios.len(), 5);
        for scenario in &s.scenarios {
            let ScenarioSpec::Synthetic { width, height, topo, routing, .. } = scenario
            else {
                panic!("routing scenarios are synthetic")
            };
            let t = topo.build(*width, *height).expect("scenario topology builds");
            assert!(
                routing.supports(t.kind()),
                "{} does not support {}",
                routing.as_str(),
                t.kind().as_str()
            );
            assert_eq!(t.num_nodes(), 16, "all rows must compare equal node counts");
        }
    }

    #[test]
    fn every_matrix_spec_builds_and_hashes() {
        for def in all() {
            if let FigureKind::Matrix { spec, .. } = &def.kind {
                let s = spec();
                assert_eq!(s.figure, def.name, "spec figure name mismatch");
                assert_eq!(s.output, def.legacy_bin, "spec output basename mismatch");
                assert!(!s.scenarios.is_empty(), "{}: no scenarios", def.name);
                assert_eq!(s.hash_hex().len(), 16);
                // Seed lists must be non-empty in both tiers.
                assert!(!s.seed_list(42, Tier::Quick).is_empty());
                assert!(!s.seed_list(42, Tier::Full).is_empty());
            }
        }
    }

    #[test]
    fn apu_normalized_specs_reference_global_age() {
        for name in ["fig09", "fig10", "fig11"] {
            let FigureKind::Matrix { spec, .. } = &find(name).unwrap().kind else {
                panic!("{name} should be a matrix figure")
            };
            assert_eq!(spec().normalization_policy().as_deref(), Some("global-age"));
        }
    }
}
