//! `SimBackend` — one `run(&SpecInstance) -> CellRecord` entry point over
//! both simulators.
//!
//! The synthetic mesh (`noc-sim`'s open-loop runner) and the APU chip
//! (`apu-sim`'s closed-loop engine) historically exposed incompatible run
//! APIs; every figure binary glued one of them by hand. A backend hides
//! that behind a single call that takes one resolved cell of the run
//! matrix and returns its metrics. Backends are stateless and `Sync`, so
//! cells dispatch freely across the sweep worker pool.

use apu_sim::NUM_QUADRANTS;
use apu_sim::WorkloadSpec;
use apu_workloads::{mixed_scenario, Benchmark};
use noc_sim::{FaultPlan, SimConfig, Simulator, SyntheticTraffic};

use super::spec::{ScenarioSpec, TierParams};
use crate::PolicySpec;

/// One fully resolved cell of a run matrix: which scenario, which policy
/// (already carrying any trained artifact), which seed, which budgets.
#[derive(Debug)]
pub struct SpecInstance<'a> {
    /// The scenario to simulate.
    pub scenario: &'a ScenarioSpec,
    /// Row label the cell carries — the scenario label, plus an
    /// `@f<intensity>` suffix when a fault axis expanded this cell.
    pub label: &'a str,
    /// Canonical policy name (registry name, or `"nn"`).
    pub policy_name: &'a str,
    /// The instantiable policy recipe.
    pub policy: &'a PolicySpec,
    /// This cell's seed (feeds traffic, engine and stochastic policies).
    pub seed: u64,
    /// The sweep's base seed (mixed scenarios draw their app composition
    /// from it, exactly as the legacy `fig11_mixed` binary did).
    pub base_seed: u64,
    /// Budget knobs for the active tier.
    pub params: &'a TierParams,
    /// Recipe hash of the trained artifact the policy was built from
    /// (`Some` exactly for NN-slot cells; recorded in the `RunRecord`).
    pub artifact: Option<&'a str>,
    /// Deterministic fault plan injected into the simulator (`None` for
    /// fault-free cells — the historical behaviour, bit-identical).
    pub faults: Option<&'a FaultPlan>,
}

/// The metrics of one simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Scenario label.
    pub scenario: String,
    /// Canonical policy name.
    pub policy: String,
    /// Seed of this run.
    pub seed: u64,
    /// Recipe hash of the trained artifact this cell was evaluated with
    /// (`None` for policies that carry no trained network).
    pub artifact: Option<String>,
    /// Hash of the fault plan this cell ran under (`None` for fault-free
    /// cells; see [`noc_sim::FaultPlan::hash_hex`]).
    pub fault_plan: Option<String>,
    /// Content hash of the cell's job identity in the result cache
    /// (`None` for cells that never went through the cache, e.g. custom
    /// figures; see `super::cache`).
    pub cell_hash: Option<String>,
    /// Result-cache provenance: `"hit"` (loaded from the on-disk cache)
    /// or `"miss"` (simulated this run). `None` when the run bypassed the
    /// cache entirely.
    pub cache: Option<String>,
    /// Named metric values, in a stable order.
    pub metrics: Vec<(String, f64)>,
}

impl CellRecord {
    /// Looks up a metric by name.
    ///
    /// # Panics
    ///
    /// Panics if the metric is absent — renderers ask only for metrics
    /// their backend emits, so a miss is a programming error.
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| {
                panic!(
                    "cell ({}, {}, seed {}) has no metric '{name}'",
                    self.scenario, self.policy, self.seed
                )
            })
    }
}

/// A simulator wrapped behind the uniform experiment entry point.
pub trait SimBackend: Sync {
    /// Stable backend name recorded in `RunRecord` JSON.
    fn name(&self) -> &'static str;

    /// Runs one cell to completion and returns its metrics.
    fn run(&self, inst: &SpecInstance<'_>) -> CellRecord;
}

/// Picks the backend a scenario runs on.
pub fn backend_for(scenario: &ScenarioSpec) -> &'static dyn SimBackend {
    if scenario.is_apu() {
        &ApuBackend
    } else {
        &SyntheticBackend
    }
}

/// Open-loop synthetic-traffic mesh backend (`noc-sim`).
///
/// Runs `warmup` cycles, resets statistics, then measures `measure`
/// cycles — or, with `warmup == 0`, measures from cycle zero (the
/// starvation check's configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticBackend;

impl SimBackend for SyntheticBackend {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn run(&self, inst: &SpecInstance<'_>) -> CellRecord {
        let ScenarioSpec::Synthetic {
            width,
            height,
            pattern,
            rate,
            topo,
            routing,
            starvation_threshold,
            noc,
            ..
        } = inst.scenario
        else {
            panic!("synthetic backend got a non-synthetic scenario");
        };
        let topo = topo.build(*width, *height).expect("valid topology");
        let mut cfg = SimConfig::synthetic(*width, *height);
        cfg.routing = *routing;
        if let Some(n) = noc {
            cfg.num_vnets = n.vnets;
            cfg.vc_capacity_flits = n.vc_capacity_flits;
        }
        // Mesh scenarios keep their historical diameter-derived bounds
        // bit-identically (`for_topology` ≡ `for_mesh` there); other graphs
        // get bounds from their own diameter.
        cfg.feature_bounds = noc_sim::FeatureBounds::for_topology(&topo);
        if let Some(t) = starvation_threshold {
            cfg.starvation_threshold = *t;
        }
        let traffic = SyntheticTraffic::new(&topo, *pattern, *rate, cfg.num_vnets, inst.seed);
        let mut sim = Simulator::new(topo, cfg, inst.policy.build(inst.seed), traffic)
            .expect("valid sim");
        if let Some(ctl) = inst.policy.build_controller(inst.seed) {
            sim.set_buffer_controller(ctl);
        }
        if let Some(plan) = inst.faults {
            sim.set_fault_plan(plan);
        }
        if inst.params.warmup > 0 {
            sim.run(inst.params.warmup);
            sim.reset_stats();
        }
        sim.run(inst.params.measure);
        let starving = sim.starving_packets();
        let s = sim.stats();
        CellRecord {
            scenario: inst.label.to_string(),
            policy: inst.policy_name.to_string(),
            seed: inst.seed,
            artifact: inst.artifact.map(String::from),
            fault_plan: inst.faults.map(FaultPlan::hash_hex),
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("avg_latency".into(), s.avg_latency()),
                ("p99_latency".into(), s.latency_percentile(99.0) as f64),
                ("p999_latency".into(), s.latency_percentile(99.9) as f64),
                ("max_latency".into(), s.max_latency() as f64),
                ("max_local_age".into(), s.max_local_age as f64),
                ("starving_packets".into(), starving as f64),
                ("jain_fairness".into(), s.jain_fairness()),
                ("delivered".into(), s.delivered as f64),
                ("throughput".into(), s.throughput()),
                ("link_fault_drops".into(), s.link_fault_drops as f64),
                ("wedged_ports".into(), s.wedged_ports as f64),
                // Self-healing metrics: unrecovered fault episodes are
                // charged the full measurement window, so "never came
                // back" reads as the worst possible recovery time.
                ("fault_onsets".into(), s.fault_onsets as f64),
                ("recoveries".into(), s.recoveries as f64),
                ("recovery_time".into(), s.avg_recovery_cycles(inst.params.measure)),
                ("post_fault_latency".into(), s.post_fault_avg_latency()),
            ],
        }
    }
}

/// Closed-loop APU chip backend (`apu-sim`): four workload copies, one per
/// quadrant, run to completion or the cycle budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApuBackend;

impl SimBackend for ApuBackend {
    fn name(&self) -> &'static str {
        "apu"
    }

    fn run(&self, inst: &SpecInstance<'_>) -> CellRecord {
        let specs = apu_specs_for(inst.scenario, inst.base_seed, inst.params.apu_scale);
        let r = crate::apu_run_with_faults(
            specs,
            inst.policy.build(inst.seed),
            inst.seed,
            inst.params.max_cycles,
            inst.faults,
        );
        CellRecord {
            scenario: inst.label.to_string(),
            policy: inst.policy_name.to_string(),
            seed: inst.seed,
            artifact: inst.artifact.map(String::from),
            fault_plan: inst.faults.map(FaultPlan::hash_hex),
            cell_hash: None,
            cache: None,
            metrics: vec![
                ("avg_exec".into(), r.avg_exec),
                ("tail_exec".into(), r.tail_exec as f64),
                ("completed".into(), if r.completed { 1.0 } else { 0.0 }),
                ("delivered".into(), r.stats.delivered as f64),
                ("avg_latency".into(), r.stats.avg_latency()),
            ],
        }
    }
}

/// Resolves an APU scenario into its four workload specs.
pub fn apu_specs_for(scenario: &ScenarioSpec, base_seed: u64, scale: f64) -> Vec<WorkloadSpec> {
    match scenario {
        ScenarioSpec::ApuWorkload { benchmark } => {
            vec![benchmark_by_name(benchmark).spec_scaled(scale); NUM_QUADRANTS]
        }
        ScenarioSpec::ApuMix { n_low } => mixed_scenario(*n_low, base_seed, scale),
        ScenarioSpec::Synthetic { .. } => {
            panic!("APU backend got a synthetic scenario")
        }
    }
}

/// Resolves a benchmark by its registry name.
///
/// # Panics
///
/// Panics on an unknown name — benchmark names in specs are static data
/// covered by the lineup-resolution tests.
pub fn benchmark_by_name(name: &str) -> Benchmark {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::super::spec::TopoSpec;
    use noc_arbiters::PolicyKind;
    use noc_sim::{Pattern, RoutingKind};

    fn tiny_params() -> TierParams {
        let mut p = TierParams::zeroed();
        p.warmup = 100;
        p.measure = 300;
        p.max_cycles = 200_000;
        p.apu_scale = 0.02;
        p
    }

    #[test]
    fn synthetic_backend_smoke() {
        let scenario = ScenarioSpec::Synthetic {
            label: "4x4".into(),
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            rate: 0.1,
            topo: TopoSpec::Mesh,
            routing: RoutingKind::XY,
            starvation_threshold: None,
            noc: None,
            lineup: None,
        };
        let policy = PolicySpec::builtin("FIFO", PolicyKind::Fifo);
        let params = tiny_params();
        let cell = SyntheticBackend.run(&SpecInstance {
            scenario: &scenario,
            label: "4x4",
            policy_name: "fifo",
            policy: &policy,
            seed: 1,
            base_seed: 1,
            params: &params,
            artifact: None,
            faults: None,
        });
        assert_eq!(cell.policy, "fifo");
        assert!(cell.metric("avg_latency") > 0.0);
        assert!(cell.metric("delivered") > 0.0);
    }

    #[test]
    fn synthetic_backend_runs_non_mesh_topologies() {
        let cases = [
            (TopoSpec::Torus, RoutingKind::TorusDimOrder, "torus"),
            (TopoSpec::Ring, RoutingKind::RingShortest, "ring"),
            (
                TopoSpec::DegradedMesh { seed: 9, drop_percent: 25 },
                RoutingKind::TableShortest,
                "degraded",
            ),
        ];
        let policy = PolicySpec::builtin("FIFO", PolicyKind::Fifo);
        let params = tiny_params();
        for (topo, routing, label) in cases {
            let scenario = ScenarioSpec::Synthetic {
                label: label.into(),
                width: 4,
                height: 4,
                pattern: Pattern::UniformRandom,
                rate: 0.1,
                topo,
                routing,
                starvation_threshold: None,
                noc: None,
                lineup: None,
            };
            let cell = SyntheticBackend.run(&SpecInstance {
                scenario: &scenario,
                label,
                policy_name: "fifo",
                policy: &policy,
                seed: 1,
                base_seed: 1,
                params: &params,
                artifact: None,
                faults: None,
            });
            assert!(cell.metric("delivered") > 0.0, "{label} delivered nothing");
        }
    }

    #[test]
    fn apu_backend_smoke_and_seed_determinism() {
        let scenario = ScenarioSpec::ApuWorkload { benchmark: "bfs".into() };
        let policy = PolicySpec::builtin("FIFO", PolicyKind::Fifo);
        let params = tiny_params();
        let inst = |seed| SpecInstance {
            scenario: &scenario,
            label: "bfs",
            policy_name: "fifo",
            policy: &policy,
            seed,
            base_seed: seed,
            params: &params,
            artifact: None,
            faults: None,
        };
        let a = ApuBackend.run(&inst(7));
        let b = ApuBackend.run(&inst(7));
        assert_eq!(a, b, "same instance must reproduce exactly");
        assert!(a.metric("avg_exec") > 0.0);
    }

    #[test]
    fn mixed_scenario_resolves_four_quadrants() {
        let specs = apu_specs_for(&ScenarioSpec::ApuMix { n_low: 2 }, 42, 0.05);
        assert_eq!(specs.len(), NUM_QUADRANTS);
    }
}
