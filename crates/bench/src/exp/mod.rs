//! # exp — the unified, declarative experiment layer
//!
//! Every paper figure used to be its own binary with copy-pasted CLI
//! parsing, table rendering and ad-hoc CSV emission, and the two
//! simulators (`noc-sim` synthetic mesh, `apu-sim` APU chip) exposed
//! incompatible run APIs. This module replaces that with one pipeline:
//!
//! * [`spec::ExperimentSpec`] — a pure-data description of a run matrix:
//!   scenarios, a policy line-up by registry name (with a trained-artifact
//!   slot for the NN policy), per-tier budgets and seed counts.
//! * [`backend::SimBackend`] — one `run(&SpecInstance) -> CellRecord`
//!   entry point with implementations wrapping the synthetic-mesh runner
//!   and the APU engine.
//! * [`record::RunRecord`] — the versioned, structured JSON result every
//!   invocation emits alongside its text table: per-cell values, seeds,
//!   the normalization reference, `git describe` and a spec hash. This is
//!   the stable schema future sharded/remote execution and regression
//!   tooling consume.
//! * [`artifacts::ArtifactStore`] — the content-addressed trained-artifact
//!   store: NN slots resolve to checkpoints named by training-recipe hash
//!   (`results/artifacts/<hash>.ckpt.json`), so a warm store re-runs a
//!   figure with zero training steps and byte-identical output.
//! * [`cache::ResultCache`] — the content-addressed *result* cache
//!   generalizing the artifact store to whole simulation cells: every
//!   cell is keyed by its [`cache::CellJob`] content hash
//!   (`results/cache/<hash>.cell.json`), so a warm cache reproduces any
//!   previously-run figure with zero simulated cycles.
//! * [`queue::JobQueue`] — the scheduler: a priority queue with
//!   dependency edges (train-before-simulate) and transitive
//!   cancellation, draining in waves through
//!   [`crate::sweep::run_parallel`].
//! * [`search`] — the design-space exploration harness: a
//!   [`search::SearchSpace`] of tunable axes over the spec, pluggable
//!   drivers (random / hill-climb / evolutionary) behind one
//!   [`search::SearchDriver`] trait, an objective folding simulated
//!   latency/throughput with analytical gate cost, and a versioned
//!   [`search::SearchRecord`] trace plus Pareto CSV — every candidate
//!   evaluated through the shared queue and result cache, so revisits
//!   and resumed searches cost zero simulation.
//! * [`figures`] — the registry mapping figure names (`fig05`, `fig09`,
//!   `table3`, …) to their specs and renderers.
//! * [`driver`] — resolves figure names, plans their cells into the
//!   queue, probes the result cache, drains the queue through
//!   [`crate::sweep::run_parallel`], prints the text table and writes
//!   the `RunRecord` (plus CSV where the legacy binary wrote one) into
//!   `--out-dir`.
//!
//! Determinism: a cell's value is a pure function of its `(scenario,
//! policy, seed, budget)` instance, and results are collected in
//! submission order, so tables are byte-identical for every `--threads`
//! value and match the pre-refactor binaries (pinned by
//! `tests/driver_equivalence.rs`).

pub mod artifacts;
pub mod backend;
pub mod cache;
pub mod conformance;
pub mod driver;
pub mod figures;
pub mod queue;
pub mod record;
pub mod search;
pub mod spec;

pub use artifacts::{ArtifactStore, ResolvedArtifact};
pub use backend::{ApuBackend, CellRecord, SimBackend, SpecInstance, SyntheticBackend};
pub use cache::{CacheStats, CellJob, ResultCache, CACHE_SCHEMA_VERSION};
pub use queue::{JobId, JobQueue};
pub use record::{RunRecord, Table, RUN_RECORD_SCHEMA_VERSION};
pub use search::{SearchDriver, SearchRecord, SearchSpace, SEARCH_SCHEMA_VERSION};
pub use spec::{
    ExperimentSpec, Lineup, LineupEntry, NnRecipe, NocParams, Normalize, ScenarioSpec, Tier,
    TierParams,
};
