//! `ExperimentSpec` — the pure-data description of a run matrix.
//!
//! A spec carries no trained networks, boxed arbiters or closures: policy
//! line-ups are registry names (the NN policy is a named *slot* filled
//! with a trained artifact at run time), scenarios are parameter records,
//! and budgets are numbers. That makes a spec hashable (for the
//! `RunRecord` provenance stamp), diffable, and — eventually — shippable
//! to remote workers.

use noc_arbiters::PolicyKind;
use noc_sim::{ConfigError, Pattern, RoutingKind, Topology, TopologyKind};

/// Experiment size tier: `--quick` smoke or the full paper configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Shrunk workloads/epochs for smoke runs.
    Quick,
    /// The full configuration behind the checked-in results.
    Full,
}

impl Tier {
    /// Stable name used in `RunRecord` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// Per-tier budget knobs. Figures use the subset that applies to them;
/// unused knobs stay zero and are ignored by the backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierParams {
    /// Synthetic: warmup cycles discarded before the measurement window
    /// (`0` = measure from cycle zero, as the starvation check does).
    pub warmup: u64,
    /// Synthetic: measured cycles.
    pub measure: u64,
    /// APU: cycle budget per closed-loop run.
    pub max_cycles: u64,
    /// Number of seeds in the sweep (`base_seed .. base_seed + seeds`).
    pub seeds: usize,
    /// APU: workload scale factor.
    pub apu_scale: f64,
    /// NN slot: training epochs (synthetic recipe).
    pub nn_epochs: usize,
    /// NN slot: cycles per training epoch (synthetic recipe).
    pub nn_epoch_cycles: u64,
    /// NN slot: workload repeats (APU recipe).
    pub nn_repeats: usize,
}

impl TierParams {
    /// A zeroed parameter block to fill in field-by-field.
    pub const fn zeroed() -> Self {
        TierParams {
            warmup: 0,
            measure: 0,
            max_cycles: 0,
            seeds: 1,
            apu_scale: 0.0,
            nn_epochs: 0,
            nn_epoch_cycles: 0,
            nn_repeats: 0,
        }
    }
}

/// One slot in a policy line-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineupEntry {
    /// A registry policy, constructed by name via
    /// [`noc_arbiters::make_arbiter`].
    Policy(PolicyKind),
    /// The trained-artifact slot: filled with a frozen NN policy produced
    /// by the spec's [`NnRecipe`] before the sweep dispatches.
    NnSlot,
    /// The self-healing slot: the trained artifact warm-starts an
    /// [`rl_arb::OnlinePolicy`] that keeps learning during the measured
    /// run (`online`), and/or a learned per-VC credit-budget controller
    /// ([`rl_arb::RlVcController`]) runs beside it (`vc_ctl`). With both
    /// flags false this would be the frozen [`LineupEntry::NnSlot`], so
    /// the parser never produces that combination.
    SelfHeal {
        /// Arbitration learns online (vs. frozen at the artifact weights).
        online: bool,
        /// A learned VC buffer controller reallocates credit budgets.
        vc_ctl: bool,
    },
}

impl LineupEntry {
    /// Parses a line-up name: `"nn"` is the trained-artifact slot,
    /// `"nn-online"` / `"nn-vcctl"` / `"nn-online-vcctl"` are its
    /// self-healing variants, any other name must resolve in the policy
    /// registry.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "nn" => return Ok(LineupEntry::NnSlot),
            "nn-online" => return Ok(LineupEntry::SelfHeal { online: true, vc_ctl: false }),
            "nn-vcctl" => return Ok(LineupEntry::SelfHeal { online: false, vc_ctl: true }),
            "nn-online-vcctl" => {
                return Ok(LineupEntry::SelfHeal { online: true, vc_ctl: true })
            }
            _ => {}
        }
        name.parse::<PolicyKind>()
            .map(LineupEntry::Policy)
            .map_err(|e| e.to_string())
    }

    /// Canonical machine-facing name (round-trips through [`Self::parse`]).
    pub fn canonical_name(self) -> &'static str {
        match self {
            LineupEntry::Policy(kind) => kind.as_str(),
            LineupEntry::NnSlot => "nn",
            LineupEntry::SelfHeal { online: true, vc_ctl: false } => "nn-online",
            LineupEntry::SelfHeal { online: false, vc_ctl: true } => "nn-vcctl",
            LineupEntry::SelfHeal { online: true, vc_ctl: true } => "nn-online-vcctl",
            LineupEntry::SelfHeal { online: false, vc_ctl: false } => {
                unreachable!("parser never produces the degenerate self-heal slot")
            }
        }
    }

    /// Human-facing label used in rendered tables.
    pub fn display_name(self) -> &'static str {
        match self {
            LineupEntry::Policy(kind) => kind.display_name(),
            LineupEntry::NnSlot => "NN",
            LineupEntry::SelfHeal { online: true, vc_ctl: false } => "NN-online",
            LineupEntry::SelfHeal { online: false, vc_ctl: true } => "NN+VCctl",
            LineupEntry::SelfHeal { online: true, vc_ctl: true } => "NN-online+VCctl",
            LineupEntry::SelfHeal { online: false, vc_ctl: false } => {
                unreachable!("parser never produces the degenerate self-heal slot")
            }
        }
    }

    /// Whether this slot is filled from the trained NN artifact (the
    /// frozen slot and every self-healing variant warm-start from it).
    pub fn uses_artifact(self) -> bool {
        matches!(self, LineupEntry::NnSlot | LineupEntry::SelfHeal { .. })
    }
}

/// An ordered policy line-up, expressed entirely as parseable names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineup {
    /// The slots, in presentation order.
    pub entries: Vec<LineupEntry>,
}

impl Lineup {
    /// Parses a list of names (e.g. `["fifo", "nn", "global-age"]`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name — line-ups are static data authored in
    /// [`super::figures`], so a bad name is a programming error caught by
    /// the registry round-trip tests.
    pub fn parse(names: &[&str]) -> Self {
        let entries = names
            .iter()
            .map(|n| LineupEntry::parse(n).unwrap_or_else(|e| panic!("bad lineup entry: {e}")))
            .collect();
        Lineup { entries }
    }

    /// Whether the line-up contains any slot that needs the trained
    /// artifact (the frozen NN slot or a self-healing variant).
    pub fn has_nn_slot(&self) -> bool {
        self.entries.iter().any(|e| e.uses_artifact())
    }
}

/// How the trained-artifact ("NN") slot is filled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnRecipe {
    /// Train a DQN agent on each synthetic scenario's mesh and rate
    /// (`nn_epochs` × `nn_epoch_cycles`), freezing one network per
    /// scenario — the Fig. 5 procedure.
    SyntheticPerScenario,
    /// Train one agent on the named APU benchmark (`nn_repeats` workload
    /// repeats, four copies), shared by every scenario — the Figs. 9–11
    /// procedure ("the paper derives its policy from bfs training").
    ApuBenchmark {
        /// Benchmark name (see [`apu_workloads::Benchmark::name`]).
        benchmark: String,
    },
    /// The design-space search's recipe: the tuned synthetic procedure
    /// ([`rl_arb::TrainSpec::tuned_synthetic`]) with the agent
    /// hyperparameters the search is exploring overriding the tuned
    /// defaults. Hyperparameters are integer-scaled so the recipe stays
    /// `Eq` and hashes canonically.
    SyntheticTuned {
        /// Discount factor γ as a percentage (`20` ⇒ `0.20`).
        gamma_pct: u8,
        /// Learning rate in units of 1e-4 (`500` ⇒ `0.05`).
        lr_e4: u32,
        /// Reward formulation the agent trains against.
        reward: rl_arb::RewardKind,
    },
}

/// The router graph a synthetic scenario runs on — the topology axis of
/// the run matrix. Every variant is built at the scenario's
/// `width × height` scale so rows with different topologies keep the same
/// node count ([`TopoSpec::Ring`] lays `width × height` routers out in a
/// single cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// 2-D mesh — the paper's configuration and the default everywhere.
    Mesh,
    /// 2-D torus: every row and column wraps around.
    Torus,
    /// 1-D ring of `width × height` routers.
    Ring,
    /// Seeded degraded mesh: `drop_percent`% of the mesh links removed
    /// (connectivity-preserving; see [`Topology::degraded_mesh`]).
    DegradedMesh {
        /// Removal-selection seed.
        seed: u64,
        /// Percentage of candidate links to drop (integer so the spec
        /// stays `Eq` and hashes canonically).
        drop_percent: u8,
    },
}

impl TopoSpec {
    /// Builds the topology at `width × height` scale with one core per
    /// router.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Topology`] constructor error (degenerate
    /// dimensions, disconnecting removals).
    pub fn build(self, width: u16, height: u16) -> Result<Topology, ConfigError> {
        match self {
            TopoSpec::Mesh => Topology::uniform_mesh(width, height),
            TopoSpec::Torus => Topology::uniform_torus(width, height),
            TopoSpec::Ring => Topology::uniform_ring(width * height),
            TopoSpec::DegradedMesh { seed, drop_percent } => Topology::uniform_degraded_mesh(
                width,
                height,
                seed,
                f64::from(drop_percent) / 100.0,
            ),
        }
    }

    /// Stable lowercase name used in labels.
    pub fn label(self) -> &'static str {
        match self {
            TopoSpec::Mesh => "mesh",
            TopoSpec::Torus => "torus",
            TopoSpec::Ring => "ring",
            TopoSpec::DegradedMesh { .. } => "degraded",
        }
    }

    /// The [`TopologyKind`] [`Self::build`] produces, without building —
    /// used to check routing compatibility ([`RoutingKind::supports`])
    /// before constructing a simulator.
    pub fn kind(self) -> TopologyKind {
        match self {
            TopoSpec::Mesh => TopologyKind::Mesh,
            TopoSpec::Torus => TopologyKind::Torus,
            TopoSpec::Ring => TopologyKind::Ring,
            TopoSpec::DegradedMesh { .. } => TopologyKind::Degraded,
        }
    }
}

/// Fabric sizing knobs a synthetic scenario may override — the VC-count
/// and buffer-depth axes of the design-space search. `None` on the
/// scenario keeps [`noc_sim::SimConfig::synthetic`]'s defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocParams {
    /// Virtual networks (message classes) per port. The NN encoder is
    /// sized `ports × vnets × features`, so NN line-ups must train with a
    /// matching [`rl_arb::TrainSpec::vnets`] override.
    pub vnets: usize,
    /// Per-VC buffer capacity in flits.
    pub vc_capacity_flits: u32,
}

/// One scenario (row group) of the run matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// Open-loop synthetic traffic on a `width × height` mesh.
    Synthetic {
        /// Short label used in cells and tables.
        label: String,
        /// Mesh width.
        width: u16,
        /// Mesh height.
        height: u16,
        /// Traffic pattern.
        pattern: Pattern,
        /// Injection rate (packets/node/cycle).
        rate: f64,
        /// Router graph the scenario runs on (built at `width × height`
        /// scale).
        topo: TopoSpec,
        /// Routing function.
        routing: RoutingKind,
        /// Override for `SimConfig::starvation_threshold`.
        starvation_threshold: Option<u64>,
        /// Fabric sizing overrides (VC count, buffer depth); `None` keeps
        /// the simulator defaults.
        noc: Option<NocParams>,
        /// Per-scenario line-up override (Fig. 5 swaps the distilled
        /// policy variant per mesh size).
        lineup: Option<Lineup>,
    },
    /// Closed-loop APU run: four copies of one benchmark, one per quadrant.
    ApuWorkload {
        /// Benchmark name (see [`apu_workloads::Benchmark::name`]).
        benchmark: String,
    },
    /// Closed-loop APU mixed scenario: `n_low` low-injection apps and
    /// `4 − n_low` high-injection apps (Fig. 11's 0L4H … 4L0H axis).
    ApuMix {
        /// Number of low-injection quadrants.
        n_low: usize,
    },
}

impl ScenarioSpec {
    /// The label cells of this scenario carry.
    pub fn label(&self) -> String {
        match self {
            ScenarioSpec::Synthetic { label, .. } => label.clone(),
            ScenarioSpec::ApuWorkload { benchmark } => benchmark.clone(),
            ScenarioSpec::ApuMix { n_low } => apu_workloads::mix_label(*n_low),
        }
    }

    /// Whether this scenario runs on the APU backend.
    pub fn is_apu(&self) -> bool {
        matches!(self, ScenarioSpec::ApuWorkload { .. } | ScenarioSpec::ApuMix { .. })
    }
}

/// The optional fault-injection axis of a run matrix.
///
/// When present, the driver runs every scenario once per intensity:
/// intensity `0.0` is the unmodified fault-free scenario, and a positive
/// intensity `i` deterministically generates a
/// [`noc_sim::FaultPlan`] with `round(i × num_mesh_links)` fault events
/// (see [`noc_sim::FaultPlan::generate`]). Rows produced by a positive
/// intensity carry an `@f<intensity>` label suffix, and their cells record
/// the plan hash.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAxis {
    /// Fault intensities, in presentation order. `0.0` means "no plan".
    pub intensities: Vec<f64>,
    /// Fraction of the run window (`warmup + measure`) kept fault-free at
    /// the *end*: plans are generated over `(1 - quiet_tail)` of the
    /// window, so every event has ended by then. `0.0` (the usual
    /// setting) scales plans to the whole window; the self-healing figure
    /// uses a positive tail so all policies get a guaranteed drain period
    /// in which recovery time is measurable rather than saturating at the
    /// unrecovered penalty.
    pub quiet_tail: f64,
    /// When true, fault onsets are shifted past the warm-up period (the
    /// plan is generated over the post-warmup portion of the window and
    /// then delayed by `warmup` cycles). Recovery episodes then open
    /// against a *converged* latency baseline: an onset landing in the
    /// first few hundred cycles of a cold network would snapshot a
    /// still-climbing EMA as "healthy", setting a recovery bar below what
    /// the healed network can actually reach.
    pub post_warmup: bool,
}

/// Which policy a row is normalized to (the "normalization reference"
/// recorded in the `RunRecord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalize {
    /// Absolute values, no reference.
    None,
    /// Divide by the first line-up entry (the de-featuring ablation's
    /// "full" variant).
    First,
    /// Divide by the last line-up entry (the figures' Global-age column).
    Last,
}

/// A declarative description of one figure's run matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Canonical figure name (`fig09`, `table3`, `load_sweep`, …).
    pub figure: String,
    /// Output file basename (kept equal to the legacy binary name so
    /// regenerated artifacts land on the checked-in paths).
    pub output: String,
    /// Human title printed above the table.
    pub title: String,
    /// Default policy line-up (scenarios may override).
    pub lineup: Lineup,
    /// How the NN slot is filled, when the line-up has one.
    pub nn: Option<NnRecipe>,
    /// The scenarios, in presentation order.
    pub scenarios: Vec<ScenarioSpec>,
    /// Optional fault-injection axis: each scenario is swept once per
    /// intensity (`None` ≡ a single fault-free pass).
    pub faults: Option<FaultAxis>,
    /// `--quick` budgets.
    pub quick: TierParams,
    /// Full budgets.
    pub full: TierParams,
    /// Normalization reference.
    pub normalize: Normalize,
}

impl ExperimentSpec {
    /// The budget block for a tier.
    pub fn params(&self, tier: Tier) -> &TierParams {
        match tier {
            Tier::Quick => &self.quick,
            Tier::Full => &self.full,
        }
    }

    /// The seed list for a tier: `base, base+1, …` (the historical
    /// [`crate::sweep_seeds`] convention).
    pub fn seed_list(&self, base: u64, tier: Tier) -> Vec<u64> {
        (0..self.params(tier).seeds as u64).map(|i| base + i).collect()
    }

    /// Canonical name of the normalization reference policy, if any.
    pub fn normalization_policy(&self) -> Option<String> {
        let entry = match self.normalize {
            Normalize::None => return None,
            Normalize::First => self.lineup.entries.first(),
            Normalize::Last => self.lineup.entries.last(),
        };
        entry.map(|e| e.canonical_name().to_string())
    }

    /// A 64-bit FNV-1a hash over the spec's canonical encoding, stamped
    /// into every `RunRecord` so downstream tooling can detect that two
    /// results came from the same experiment definition.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(format!("{self:?}").as_bytes()))
    }
}

/// 64-bit FNV-1a.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_entries_round_trip() {
        for name in [
            "round-robin",
            "nn",
            "global-age",
            "rl-apu",
            "nn-online",
            "nn-vcctl",
            "nn-online-vcctl",
        ] {
            let entry = LineupEntry::parse(name).unwrap();
            assert_eq!(entry.canonical_name(), name);
        }
        assert!(LineupEntry::parse("no-such-policy").is_err());
    }

    #[test]
    fn self_heal_slots_use_the_trained_artifact() {
        for name in ["nn", "nn-online", "nn-vcctl", "nn-online-vcctl"] {
            assert!(LineupEntry::parse(name).unwrap().uses_artifact(), "{name}");
            assert!(Lineup::parse(&["fifo", name]).has_nn_slot(), "{name}");
        }
        assert!(!LineupEntry::parse("fifo").unwrap().uses_artifact());
        assert!(!Lineup::parse(&["fifo", "global-age"]).has_nn_slot());
    }

    #[test]
    fn spec_hash_is_stable_and_sensitive() {
        let spec = ExperimentSpec {
            figure: "t".into(),
            output: "t".into(),
            title: "t".into(),
            lineup: Lineup::parse(&["fifo", "global-age"]),
            nn: None,
            scenarios: vec![ScenarioSpec::ApuWorkload { benchmark: "bfs".into() }],
            faults: None,
            quick: TierParams::zeroed(),
            full: TierParams::zeroed(),
            normalize: Normalize::Last,
        };
        let h1 = spec.hash_hex();
        assert_eq!(h1, spec.clone().hash_hex(), "hash must be deterministic");
        let mut other = spec;
        other.quick.seeds = 7;
        assert_ne!(h1, other.hash_hex(), "hash must see budget changes");
    }

    #[test]
    fn topo_specs_build_label_and_kind_agree() {
        let specs = [
            TopoSpec::Mesh,
            TopoSpec::Torus,
            TopoSpec::Ring,
            TopoSpec::DegradedMesh { seed: 9, drop_percent: 25 },
        ];
        for t in specs {
            let built = t.build(4, 4).unwrap();
            assert_eq!(built.kind(), t.kind(), "{} built the wrong family", t.label());
            assert_eq!(built.kind().as_str(), t.label());
            assert_eq!(built.num_nodes(), 16, "one core per router at 4x4 scale");
        }
    }

    #[test]
    fn normalization_reference_names() {
        let mut spec = ExperimentSpec {
            figure: "t".into(),
            output: "t".into(),
            title: "t".into(),
            lineup: Lineup::parse(&["rl-apu", "nn", "global-age"]),
            nn: None,
            scenarios: Vec::new(),
            faults: None,
            quick: TierParams::zeroed(),
            full: TierParams::zeroed(),
            normalize: Normalize::Last,
        };
        assert_eq!(spec.normalization_policy().as_deref(), Some("global-age"));
        spec.normalize = Normalize::First;
        assert_eq!(spec.normalization_policy().as_deref(), Some("rl-apu"));
        spec.normalize = Normalize::None;
        assert_eq!(spec.normalization_policy(), None);
    }
}
