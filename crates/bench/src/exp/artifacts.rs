//! The content-addressed trained-artifact store.
//!
//! Training is the expensive, non-parallelizable part of every NN-bearing
//! figure. The store memoizes it on disk: a [`rl_arb::TrainRecipe`] is a
//! pure-data description of one training run, its FNV-1a content hash
//! names the artifact file (`<dir>/<hash>.ckpt.json`, a
//! [`nn_mlp::Checkpoint`]), and [`ArtifactStore::resolve`] either loads
//! that checkpoint (zero training steps) or trains, saves and returns it.
//!
//! The rebuilt policy is bit-identical to freezing the just-trained agent
//! (the checkpoint round-trips weights, encoder geometry and feature
//! bounds exactly, and the frozen arbiter's remaining inputs are fixed
//! constants — pinned by `rl-arb`'s `rebuilt_policy_matches_frozen_agent`
//! test), so warm-store figure output is byte-identical to a cold run.

use std::path::{Path, PathBuf};

use nn_mlp::Checkpoint;
use rl_arb::{
    checkpoint_from_outcome, policy_from_checkpoint, NnPolicyArbiter, TrainRecipe, Trainer,
};

use super::record::git_describe;
use crate::CliArgs;

/// A trained artifact resolved through the store.
#[derive(Debug)]
pub struct ResolvedArtifact {
    /// The frozen evaluation policy.
    pub policy: NnPolicyArbiter,
    /// The producing recipe's content hash (the artifact's identity; every
    /// NN cell records it in the `RunRecord`).
    pub recipe_hash: String,
    /// Whether the artifact was loaded from disk (no training happened).
    pub was_cached: bool,
    /// Where the checkpoint lives.
    pub path: PathBuf,
}

/// A directory of checkpoints addressed by recipe hash.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    retrain: bool,
}

impl ArtifactStore {
    /// A store rooted at `dir`. With `retrain`, cached artifacts are
    /// ignored (and overwritten) — the `--retrain` escape hatch.
    pub fn new(dir: impl Into<PathBuf>, retrain: bool) -> Self {
        ArtifactStore { dir: dir.into(), retrain }
    }

    /// The store the given CLI arguments select.
    pub fn from_args(args: &CliArgs) -> Self {
        Self::new(&args.artifacts_dir, args.retrain)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint path a recipe hash addresses.
    pub fn path_for(&self, recipe_hash: &str) -> PathBuf {
        self.dir.join(format!("{recipe_hash}.ckpt.json"))
    }

    /// Load-or-train: returns the frozen policy for `recipe`, training
    /// only when no usable checkpoint exists (or `--retrain` asked for a
    /// fresh one). A checkpoint that exists but fails to decode is
    /// reported and retrained over rather than trusted.
    ///
    /// # Errors
    ///
    /// Returns a description of an unresolvable recipe (e.g. an unknown
    /// APU benchmark name) or a failed checkpoint write.
    pub fn resolve(&self, recipe: &TrainRecipe) -> Result<ResolvedArtifact, String> {
        let recipe_hash = recipe.hash_hex();
        let path = self.path_for(&recipe_hash);
        if !self.retrain && path.exists() {
            match Checkpoint::load(&path)
                .map_err(|e| e.to_string())
                .and_then(|ckpt| {
                    if ckpt.recipe_hash != recipe_hash {
                        return Err(format!(
                            "stored recipe hash {} does not match file name",
                            ckpt.recipe_hash
                        ));
                    }
                    policy_from_checkpoint(&ckpt)
                }) {
                Ok(policy) => {
                    rl_arb::progress!(
                        "using cached NN artifact {recipe_hash} for {} ...",
                        recipe.label()
                    );
                    return Ok(ResolvedArtifact {
                        policy,
                        recipe_hash,
                        was_cached: true,
                        path,
                    });
                }
                Err(e) => {
                    rl_arb::progress!(
                        "artifact {} is unusable ({e}); retraining ...",
                        path.display()
                    );
                }
            }
        }
        let mut env = recipe.env()?;
        let outcome = Trainer::new(recipe.agent_config().clone()).run(env.as_mut());
        let ckpt = checkpoint_from_outcome(&outcome, &recipe_hash, &git_describe());
        // Write-then-rename so concurrent resolvers of the same recipe
        // (parallel test threads, parallel figure runs) never observe a
        // half-written checkpoint.
        static TMP_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{recipe_hash}.{}.{}.tmp",
            std::process::id(),
            TMP_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        ckpt.save(&tmp)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("writing artifact {}: {e}", path.display()))?;
        rl_arb::progress!("NN artifact {recipe_hash} written to {}", path.display());
        Ok(ResolvedArtifact {
            policy: outcome.agent.freeze(),
            recipe_hash,
            was_cached: false,
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_arb::{training_epochs, TrainSpec};

    fn tiny_recipe(seed: u64) -> TrainRecipe {
        let mut spec = TrainSpec::tuned_synthetic(4, 0.25, seed);
        spec.curriculum = Vec::new();
        spec.epochs = 2;
        spec.cycles_per_epoch = 300;
        TrainRecipe::Synthetic(spec)
    }

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir()
            .join(format!("bench-artifacts-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::new(dir, false)
    }

    #[test]
    fn cold_resolve_trains_and_warm_resolve_loads_the_same_policy() {
        let store = temp_store("warm");
        let recipe = tiny_recipe(11);
        let cold = store.resolve(&recipe).unwrap();
        assert!(!cold.was_cached);
        assert!(cold.path.exists(), "checkpoint written");

        let before = training_epochs();
        let warm = store.resolve(&recipe).unwrap();
        assert!(warm.was_cached);
        assert_eq!(training_epochs(), before, "warm resolve must not train");
        assert_eq!(warm.recipe_hash, cold.recipe_hash);
        // Bit-identical policy (Debug covers weights + full arbiter state).
        assert_eq!(format!("{:?}", warm.policy), format!("{:?}", cold.policy));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn retrain_ignores_the_cache() {
        let store = temp_store("retrain");
        let recipe = tiny_recipe(12);
        store.resolve(&recipe).unwrap();
        let retrainer = ArtifactStore::new(store.dir(), true);
        let before = training_epochs();
        let again = retrainer.resolve(&recipe).unwrap();
        assert!(!again.was_cached);
        assert!(training_epochs() > before, "--retrain must train");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_artifacts_are_retrained_over() {
        let store = temp_store("corrupt");
        let recipe = tiny_recipe(13);
        let first = store.resolve(&recipe).unwrap();
        std::fs::write(&first.path, "not a checkpoint").unwrap();
        let again = store.resolve(&recipe).unwrap();
        assert!(!again.was_cached, "corrupt checkpoint must not be trusted");
        // The repaired artifact is readable again.
        assert!(store.resolve(&recipe).unwrap().was_cached);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unknown_benchmarks_are_reported() {
        let store = temp_store("unknown");
        let recipe = TrainRecipe::Apu(rl_arb::ApuTrainSpec::tuned(
            "no-such-benchmark",
            1,
            1_000,
            0.02,
            42,
        ));
        let err = store.resolve(&recipe).unwrap_err();
        assert!(err.contains("no-such-benchmark"), "{err}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
