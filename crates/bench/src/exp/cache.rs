//! Content-addressed result cache for simulation cells.
//!
//! Where [`super::artifacts::ArtifactStore`] caches *trained networks* by
//! training-recipe hash, `ResultCache` generalizes the idea to *simulation
//! results*: every cell of a run matrix is identified by a [`CellJob`] —
//! the canonical description of everything that determines its result
//! bits — and its [`CellRecord`] is stored under
//! `<cache-dir>/<hash>.cell.json`. A warm cache reproduces any
//! previously-run figure with zero simulated cycles; the driver stamps
//! each assembled cell with its hash and `"hit"`/`"miss"` provenance.
//!
//! Entries are written atomically (unique temp file + rename, the
//! `ArtifactStore` pattern), and corrupt, truncated or mis-keyed entries
//! load as `None` so the affected cell silently re-simulates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rl_arb::InferenceMode;

use super::backend::CellRecord;
use super::record::{cell_from_json, cell_to_json, Json, ObjExt};
use super::spec::{fnv1a64, ScenarioSpec, TierParams};
use crate::CliArgs;

/// Version stamp of the on-disk cache-entry schema *and* of the
/// [`CellJob`] canonical hash input. Bump on any change to either — old
/// entries then simply miss and re-simulate; no migration is needed.
/// (v2: `ScenarioSpec::Synthetic` gained the `noc` fabric-sizing field.
/// v3: the synthetic backend emits the self-healing recovery metrics, so
/// pre-v3 cells lack columns the selfheal renderer reads.)
pub const CACHE_SCHEMA_VERSION: u64 = 3;

/// The identity of one simulation cell: everything that determines the
/// cell's result bits, as pure data. Hashing a `CellJob` needs no
/// training and no simulation, so a fully warm run computes every key
/// without doing any work.
#[derive(Debug, Clone, PartialEq)]
pub struct CellJob {
    /// The scenario the cell runs.
    pub scenario: ScenarioSpec,
    /// Row label (carries the `@f<intensity>` suffix under a fault axis).
    pub label: String,
    /// Canonical policy name (`"nn"`, `"global_age"`, ...).
    pub policy: String,
    /// Sweep seed of this cell.
    pub seed: u64,
    /// Base seed of the run (feeds plan generation and training).
    pub base_seed: u64,
    /// Tier parameters the cell runs under.
    pub params: TierParams,
    /// Training-recipe hash of the NN artifact (`None` for builtins).
    pub artifact: Option<String>,
    /// Hash of the fault plan the cell runs under (`None` = fault-free).
    pub fault_plan: Option<String>,
    /// NN inference datapath. Only part of the identity for NN cells —
    /// builtin policies never touch the network, so their results are
    /// datapath-invariant.
    pub inference: InferenceMode,
}

impl CellJob {
    /// The canonical content-hash input. Every field that can change the
    /// result bits appears exactly once; `Debug` formats are stable for
    /// the plain-data spec types used here.
    fn canonical(&self) -> String {
        let opt = |v: &Option<String>| v.clone().unwrap_or_else(|| "-".into());
        let inference = match self.artifact {
            Some(_) => format!("{:?}", self.inference),
            None => "-".into(),
        };
        format!(
            "cell-cache-v{CACHE_SCHEMA_VERSION}|scenario={:?}|label={}|policy={}|seed={}|base_seed={}|params={:?}|artifact={}|fault_plan={}|inference={inference}",
            self.scenario,
            self.label,
            self.policy,
            self.seed,
            self.base_seed,
            self.params,
            opt(&self.artifact),
            opt(&self.fault_plan),
        )
    }

    /// FNV-1a content hash of the cell identity, as the 16-digit hex key
    /// the cache files are named by.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

/// Makes cache-entry temp names unique per write (same scheme as the
/// artifact store), so concurrent writers never collide.
static TMP_ID: AtomicU64 = AtomicU64::new(0);

/// The on-disk, content-addressed cell-result store.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache the CLI flags select (`--cache-dir`).
    pub fn from_args(args: &CliArgs) -> Self {
        ResultCache::new(args.cache_dir.clone())
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a hash's entry lives at.
    pub fn path_for(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.cell.json"))
    }

    /// Loads the cell stored under `hash`. Missing, truncated, corrupt,
    /// version-skewed or mis-keyed entries all return `None` — the cell
    /// then re-simulates and the entry is rewritten, so a damaged cache
    /// self-repairs without any tooling.
    pub fn load(&self, hash: &str) -> Option<CellRecord> {
        let text = std::fs::read_to_string(self.path_for(hash)).ok()?;
        let value = Json::parse(&text).ok()?;
        let obj = value.as_object().ok()?;
        if obj.get("cache_schema_version")?.as_u64().ok()? != CACHE_SCHEMA_VERSION {
            return None;
        }
        if obj.get("cell_hash")?.as_str().ok()? != hash {
            return None;
        }
        let cell = cell_from_json(obj.get("cell")?).ok()?;
        // The embedded cell must agree with the entry's own key.
        if cell.cell_hash.as_deref() != Some(hash) {
            return None;
        }
        Some(cell)
    }

    /// Stores `cell` under `hash`, atomically (write to a unique temp
    /// file, then rename). The stored cell is normalized — `cell_hash`
    /// set, provenance (`cache`) cleared — so entry bytes are identical
    /// whether the producing run was cold or warm.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; callers treat the cache as best-effort.
    pub fn store(&self, hash: &str, cell: &CellRecord) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let mut normalized = cell.clone();
        normalized.cell_hash = Some(hash.to_string());
        normalized.cache = None;
        let text = format!(
            "{{\n  \"cache_schema_version\": {CACHE_SCHEMA_VERSION},\n  \"cell_hash\": \"{hash}\",\n  \"cell\": {}\n}}\n",
            cell_to_json(&normalized)
        );
        let tmp = self.dir.join(format!(
            ".{hash}.{}.{}.tmp",
            std::process::id(),
            TMP_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        let path = self.path_for(hash);
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// End-of-run cache accounting, printed by `repro --cache-stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Matrix cells the run assembled (hits + misses).
    pub cells: u64,
    /// Cells answered from the cache with zero simulation.
    pub hits: u64,
    /// Cells simulated this run (and stored for the next one).
    pub misses: u64,
    /// Simulator cycles actually stepped, training included (`0` on a
    /// fully warm run).
    pub simulated_cycles: u64,
}

impl CacheStats {
    /// Folds another accounting run into this one (counter-wise sum).
    pub fn absorb(&mut self, other: CacheStats) {
        self.cells += other.cells;
        self.hits += other.hits;
        self.misses += other.misses;
        self.simulated_cycles += other.simulated_cycles;
    }

    /// The one-line summary `--cache-stats` prints.
    pub fn summary(&self) -> String {
        format!(
            "cache-stats: cells={} hits={} misses={} simulated-cycles={}",
            self.cells, self.hits, self.misses, self.simulated_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::super::spec::TopoSpec;
    use noc_sim::{Pattern, RoutingKind};

    fn job(seed: u64) -> CellJob {
        CellJob {
            scenario: ScenarioSpec::Synthetic {
                label: "4x4".into(),
                width: 4,
                height: 4,
                pattern: Pattern::UniformRandom,
                rate: 0.4,
                topo: TopoSpec::Mesh,
                routing: RoutingKind::XY,
                starvation_threshold: None,
                noc: None,
                lineup: None,
            },
            label: "4x4".into(),
            policy: "global_age".into(),
            seed,
            base_seed: 42,
            params: TierParams {
                warmup: 100,
                measure: 400,
                max_cycles: 0,
                seeds: 2,
                apu_scale: 0.0,
                nn_epochs: 0,
                nn_epoch_cycles: 0,
                nn_repeats: 0,
            },
            artifact: None,
            fault_plan: None,
            inference: InferenceMode::F32,
        }
    }

    fn cell(hash: Option<&str>) -> CellRecord {
        CellRecord {
            scenario: "4x4".into(),
            policy: "global_age".into(),
            seed: 7,
            artifact: None,
            fault_plan: None,
            cell_hash: hash.map(Into::into),
            cache: None,
            metrics: vec![("avg_latency".into(), 12.5)],
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "mlnoc_result_cache_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        ResultCache::new(dir)
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = job(7);
        assert_eq!(a.hash_hex(), job(7).hash_hex(), "hash must be a pure function");
        assert_ne!(a.hash_hex(), job(8).hash_hex(), "seed must change the key");
        let mut b = job(7);
        b.policy = "fifo".into();
        assert_ne!(a.hash_hex(), b.hash_hex(), "policy must change the key");
        let mut c = job(7);
        c.fault_plan = Some("0123456789abcdef".into());
        assert_ne!(a.hash_hex(), c.hash_hex(), "fault plan must change the key");
        let mut d = job(7);
        if let ScenarioSpec::Synthetic { noc, .. } = &mut d.scenario {
            *noc = Some(super::super::spec::NocParams { vnets: 2, vc_capacity_flits: 5 });
        }
        assert_ne!(a.hash_hex(), d.hash_hex(), "fabric sizing must change the key");
    }

    #[test]
    fn inference_only_keys_nn_cells() {
        let mut builtin = job(7);
        builtin.inference = InferenceMode::Int8;
        assert_eq!(
            job(7).hash_hex(),
            builtin.hash_hex(),
            "builtin results are datapath-invariant"
        );
        let mut nn_f32 = job(7);
        nn_f32.artifact = Some("aa".into());
        let mut nn_int8 = nn_f32.clone();
        nn_int8.inference = InferenceMode::Int8;
        assert_ne!(nn_f32.hash_hex(), nn_int8.hash_hex());
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("round_trip");
        let hash = job(7).hash_hex();
        assert_eq!(cache.load(&hash), None, "cold cache misses");
        cache.store(&hash, &cell(None)).unwrap();
        let loaded = cache.load(&hash).expect("warm cache hits");
        assert_eq!(loaded.cell_hash.as_deref(), Some(hash.as_str()));
        assert_eq!(loaded.cache, None, "stored entries carry no provenance");
        assert_eq!(loaded.metrics, cell(None).metrics);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn stored_bytes_are_provenance_invariant() {
        let cache = temp_cache("normalize");
        let hash = job(7).hash_hex();
        let mut hit = cell(Some(&hash));
        hit.cache = Some("hit".into());
        cache.store(&hash, &hit).unwrap();
        let a = std::fs::read(cache.path_for(&hash)).unwrap();
        let mut miss = cell(Some(&hash));
        miss.cache = Some("miss".into());
        cache.store(&hash, &miss).unwrap();
        let b = std::fs::read(cache.path_for(&hash)).unwrap();
        assert_eq!(a, b, "entry bytes must not depend on the producing run");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_truncated_or_miskeyed_entries_miss() {
        let cache = temp_cache("corrupt");
        let hash = job(7).hash_hex();
        cache.store(&hash, &cell(None)).unwrap();
        let path = cache.path_for(&hash);

        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(cache.load(&hash), None, "truncated entry must miss");

        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(cache.load(&hash), None, "corrupt entry must miss");

        // A valid entry filed under the wrong key must miss too.
        cache.store(&hash, &cell(None)).unwrap();
        let other = job(8).hash_hex();
        std::fs::copy(&path, cache.path_for(&other)).unwrap();
        assert_eq!(cache.load(&other), None, "mis-keyed entry must miss");
        assert!(cache.load(&hash).is_some(), "the honest entry still hits");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn version_skewed_entries_miss() {
        let cache = temp_cache("version");
        let hash = job(7).hash_hex();
        cache.store(&hash, &cell(None)).unwrap();
        let path = cache.path_for(&hash);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace(
                &format!("\"cache_schema_version\": {CACHE_SCHEMA_VERSION}"),
                "\"cache_schema_version\": 999",
            ),
        )
        .unwrap();
        assert_eq!(cache.load(&hash), None, "future-versioned entry must miss");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn stats_summary_is_greppable() {
        let stats = CacheStats { cells: 18, hits: 18, misses: 0, simulated_cycles: 0 };
        assert_eq!(
            stats.summary(),
            "cache-stats: cells=18 hits=18 misses=0 simulated-cycles=0"
        );
    }
}
