//! Fig. 7: weight heatmap of the agent trained on the APU system running
//! bfs (6 ports × 7 VCs × 12 features = 504 inputs).
//!
//! Expected shape (paper §4.6): local age and hop count heavily used;
//! coherence / memory-response / GPU-L2-response message classes carry
//! significant weight.

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::{train_apu_agent, CliArgs};
use rl_arb::weight_heatmap;

fn main() {
    let args = CliArgs::parse();
    let scale = args.apu_scale();
    let repeats = if args.quick { 1 } else { 3 };
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    eprintln!("training agent on bfs x{repeats} (scale {scale}) ...");
    let agent = train_apu_agent(specs, repeats, 2_000_000, args.seed);
    let hm = weight_heatmap(agent.network(), agent.encoder());

    println!("== Fig. 7: hidden-layer |weight| heatmap (APU agent, bfs) ==");
    println!("rows: 12 feature entries, columns: 42 buffers (Core/Mem/N/S/W/E x 7 VCs)\n");
    println!("{}", hm.to_ascii());
    println!("feature importance (mean |w| across buffers):");
    for (row, mean) in hm.ranked_rows() {
        println!("  {:>20}: {:.4}", hm.row_labels[row], mean);
    }
    println!(
        "\nagent: {} decisions, {} explored, replay {} entries",
        agent.decisions(),
        agent.explored(),
        agent.replay_len()
    );
    println!("\ncsv:\n{}", hm.to_csv());
}
