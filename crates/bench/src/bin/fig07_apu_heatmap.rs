//! Fig. 7: weight heatmap of the agent trained on the APU system running
//! bfs (6 ports × 7 VCs × 12 features = 504 inputs).
//!
//! Expected shape (paper §4.6): local age and hop count heavily used;
//! coherence / memory-response / GPU-L2-response message classes carry
//! significant weight.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig07` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig07");
}
