//! Design-choice ablation: agent hyperparameters.
//!
//! The paper (§6.1) highlights hyperparameter tuning as substantial human
//! effort. This binary documents the search that produced this
//! reproduction's tuned configuration: it trains agents under the paper's
//! published values and under our tuned values (plus one-factor variants),
//! and reports final latency and oracle accuracy for each.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- ablation_hparams` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("ablation_hparams");
}
