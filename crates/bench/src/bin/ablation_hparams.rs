//! Design-choice ablation: agent hyperparameters.
//!
//! The paper (§6.1) highlights hyperparameter tuning as substantial human
//! effort. This binary documents the search that produced this
//! reproduction's tuned configuration: it trains agents under the paper's
//! published values and under our tuned values (plus one-factor variants),
//! and reports final latency and oracle accuracy for each.

use bench::{render_table, CliArgs};
use rl_arb::{train_synthetic, AgentConfig, TrainSpec};

fn main() {
    let args = CliArgs::parse();
    let (epochs, cycles) = if args.quick { (12, 800) } else { (50, 2_000) };

    let variants: Vec<(&str, AgentConfig)> = vec![
        ("paper (lr.001 g.9 e.001 b2)", AgentConfig::paper_synthetic(args.seed)),
        ("tuned (lr.05 g.2 e.05 b16)", AgentConfig::tuned_synthetic(args.seed)),
        ("tuned, gamma=0.9", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.gamma = 0.9;
            c
        }),
        ("tuned, gamma=0.0", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.gamma = 0.0;
            c
        }),
        ("tuned, lr=0.001", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.lr = 0.001;
            c
        }),
        ("tuned, batch=2", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.batch_size = 2;
            c
        }),
        ("tuned, eps=0.001", {
            let mut c = AgentConfig::tuned_synthetic(args.seed);
            c.epsilon = 0.001;
            c
        }),
        (
            "tuned + double DQN",
            AgentConfig::tuned_synthetic(args.seed).with_double_dqn(true),
        ),
        (
            "tuned + prioritized (a=0.6)",
            AgentConfig::tuned_synthetic(args.seed).with_prioritized(0.6),
        ),
    ];

    let mut rows = Vec::new();
    for (name, agent) in variants {
        eprintln!("training: {name} ...");
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.agent = agent;
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        let out = train_synthetic(&spec);
        let acc = out.agent.cumulative_reward() / out.agent.decisions().max(1) as f64;
        let tail = &out.curve[out.curve.len() - out.curve.len() / 4..];
        let settled = tail.iter().sum::<f64>() / tail.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{settled:.1}"),
            format!("{:.1}", out.best_latency()),
            format!("{acc:.3}"),
        ]);
    }
    println!("\n== hyperparameter ablation: training on 4x4 @ 0.40 ==\n");
    println!(
        "{}",
        render_table(
            &["configuration", "settled latency", "best epoch", "oracle acc"],
            &rows
        )
    );
    println!("the paper's published values do not converge in this substrate;");
    println!("the decisive change is the discount factor (see DESIGN.md).");
}
