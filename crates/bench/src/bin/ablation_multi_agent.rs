//! Design-choice ablation: one shared agent vs one agent per quadrant
//! (paper §3.1.1: "designers can use multiple agents for training, where
//! each agent is trained with only a fixed subset of routers").
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- ablation_multi_agent` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("ablation_multi_agent");
}
