//! Design-choice ablation: one shared agent vs one agent per quadrant
//! (paper §3.1.1: "designers can use multiple agents for training, where
//! each agent is trained with only a fixed subset of routers").

use apu_sim::{make_apu_sim, EngineConfig, APU_MESH, NUM_QUADRANTS};
use apu_workloads::Benchmark;
use bench::{render_table, CliArgs};
use noc_sim::SimConfig;
use rl_arb::{AgentConfig, DqnAgent, FeatureSet, PartitionedAgents, StateEncoder};

fn main() {
    let args = CliArgs::parse();
    let scale = args.apu_scale();
    let repeats = if args.quick { 1 } else { 3 };
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    let cfg = SimConfig::apu(APU_MESH, APU_MESH);
    let encoder = StateEncoder::new(6, cfg.num_vnets, FeatureSet::full(), cfg.feature_bounds);

    // --- single shared agent ------------------------------------------
    eprintln!("training single shared agent ...");
    let single = DqnAgent::new(encoder.clone(), AgentConfig::tuned_apu(args.seed)).into_shared();
    for rep in 0..repeats {
        let mut sim = make_apu_sim(
            specs.clone(),
            Box::new(single.training_arbiter()),
            EngineConfig::default(),
            args.seed.wrapping_add(rep),
        );
        sim.run_until_done(4_000_000);
    }
    let single_agent = single.into_inner();
    let single_acc =
        single_agent.cumulative_reward() / single_agent.decisions().max(1) as f64;

    // --- per-quadrant agents ------------------------------------------
    eprintln!("training four per-quadrant agents ...");
    let apu = apu_sim::ApuTopology::build();
    let partition = PartitionedAgents::by_quadrant(
        apu.topology(),
        &encoder,
        &AgentConfig::tuned_apu(args.seed),
    );
    for rep in 0..repeats {
        let mut sim = make_apu_sim(
            specs.clone(),
            Box::new(partition.training_arbiter()),
            EngineConfig::default(),
            args.seed.wrapping_add(rep),
        );
        sim.run_until_done(4_000_000);
    }
    let quad_agents = partition.into_agents();

    let mut rows = vec![vec![
        "single shared".to_string(),
        format!("{}", single_agent.decisions()),
        format!("{single_acc:.3}"),
    ]];
    for (q, a) in quad_agents.iter().enumerate() {
        rows.push(vec![
            format!("quadrant {q}"),
            format!("{}", a.decisions()),
            format!("{:.3}", a.cumulative_reward() / a.decisions().max(1) as f64),
        ]);
    }
    println!("\n== multi-agent ablation: bfs training on the APU ==\n");
    println!(
        "{}",
        render_table(&["agent", "decisions", "oracle accuracy"], &rows)
    );
    println!("per-quadrant agents see a quarter of the data each; with the");
    println!("quadrant-symmetric workload their accuracies match the shared");
    println!("agent's, supporting the paper's 'not fundamental' remark.");
}
