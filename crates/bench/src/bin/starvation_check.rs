//! §6.4 starvation check: sustained-but-feasible hotspot traffic under
//! (a) the RL-inspired arbiter, whose local-age clause bounds waiting
//! times, and (b) a deliberately starvation-prone newest-first policy.
//!
//! Expected shape: newest-first produces enormous worst-case local ages
//! and delivered latencies; the RL-inspired arbiter (and global-age)
//! keep the tail bounded. The offered hotspot load is kept below the
//! ejection-port capacity so backlogs reflect *policy*, not overload.

use bench::CliArgs;
use noc_arbiters::{make_arbiter, MaxPriorityArbiter, PolicyKind, PriorityPolicy};
use noc_sim::{
    Arbiter, Candidate, NodeId, OutputCtx, Pattern, SimConfig, Simulator, SyntheticTraffic,
    Topology,
};

/// Adversarial control policy: always prefer the *youngest* message.
#[derive(Debug)]
struct NewestFirst;

impl PriorityPolicy for NewestFirst {
    fn name(&self) -> String {
        "Newest-first".into()
    }
    fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        let age = c.features.local_age.min((1 << 20) - 1) as u32;
        (1 << 20) - age
    }
}

fn run(policy: Box<dyn Arbiter>, cycles: u64, seed: u64) -> (u64, u64, u64, u64) {
    let topo = Topology::uniform_mesh(8, 8).unwrap();
    let mut cfg = SimConfig::synthetic(8, 8);
    cfg.starvation_threshold = 1_000;
    // Offered load at the hotspot ejection port, in flits/cycle (packets
    // average 1.8 flits): 64 x 0.18 x 0.025 x 1.8 = 0.52 extra plus ~0.31
    // background = ~0.83 < 1.0 flit/cycle capacity — feasible but hot.
    let traffic = SyntheticTraffic::new(
        &topo,
        Pattern::Hotspot {
            node: NodeId(27),
            fraction: 0.025,
        },
        0.18,
        cfg.num_vnets,
        seed,
    );
    let mut sim = Simulator::new(topo, cfg, policy, traffic).unwrap();
    sim.run(cycles);
    let starving = sim.starving_packets();
    let s = sim.stats();
    (s.max_local_age, starving, s.latency_percentile(99.9), s.max_latency())
}

fn main() {
    let args = CliArgs::parse();
    let cycles = if args.quick { 20_000 } else { 100_000 };
    println!("== §6.4 starvation check: feasible hotspot traffic, 8x8 mesh, {cycles} cycles ==\n");
    // The three policy runs are independent; dispatch them on the sweep
    // pool. Arbiters are built inside each worker (the policy index is the
    // job), keeping the jobs trivially Send.
    let names = [
        "RL-inspired (distilled, with starvation clause)",
        "Global-age (oracle)",
        "Newest-first (adversarial control)",
    ];
    let results = bench::sweep::run_parallel((0..names.len()).collect(), args.threads, |i| {
        let policy: Box<dyn Arbiter> = match i {
            0 => make_arbiter(PolicyKind::RlApu, args.seed),
            1 => make_arbiter(PolicyKind::GlobalAge, args.seed),
            _ => Box::new(MaxPriorityArbiter::new(NewestFirst)),
        };
        run(policy, cycles, args.seed)
    });
    for (name, (max_age, starving, p999, max_lat)) in names.into_iter().zip(results) {
        println!("{name}:");
        println!("  max local age seen            : {max_age}");
        println!("  packets starving (> 1000 cyc) : {starving}");
        println!("  p99.9 / max delivered latency : {p999} / {max_lat}\n");
    }
    println!("expected: newest-first starves (huge max age/latency); the");
    println!("RL-inspired starvation clause keeps the tail bounded.");
}
