//! §6.4 starvation check: sustained-but-feasible hotspot traffic under
//! (a) the RL-inspired arbiter, whose local-age clause bounds waiting
//! times, and (b) a deliberately starvation-prone newest-first policy.
//!
//! Expected shape: newest-first produces enormous worst-case local ages
//! and delivered latencies; the RL-inspired arbiter (and global-age)
//! keep the tail bounded. The offered hotspot load is kept below the
//! ejection-port capacity so backlogs reflect *policy*, not overload.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- starvation_check` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("starvation_check");
}
