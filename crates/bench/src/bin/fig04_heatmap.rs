//! Fig. 4: average first-layer weight heatmap of the agent trained on a
//! 4×4 mesh under uniform-random traffic (5 ports × 3 VCs × 4 features).
//!
//! The paper's takeaway, which the printed ranking should reproduce:
//! "the hidden layer neurons tend to make the most use of the local age
//! and hop count features … distance is largely ignored."

use bench::CliArgs;
use rl_arb::{train_synthetic, weight_heatmap, TrainSpec};

fn main() {
    let args = CliArgs::parse();
    // Train at a contended operating point with the tuned recipe — at
    // light load there is almost no arbitration and hence no signal.
    let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
    if args.quick {
        spec.curriculum = vec![(0.32, 4)];
        spec.epochs = 8;
        spec.cycles_per_epoch = 800;
    }
    eprintln!(
        "training agent: {} epochs x {} cycles on 4x4 uniform random ...",
        spec.epochs, spec.cycles_per_epoch
    );
    let outcome = train_synthetic(&spec);
    let hm = weight_heatmap(outcome.agent.network(), outcome.agent.encoder());

    println!("== Fig. 4: hidden-layer |weight| heatmap (4x4 mesh agent) ==");
    println!("rows: features, columns: input buffers (port x VC); darker = larger\n");
    println!("{}", hm.to_ascii());
    println!("feature importance (mean |w| across all buffers):");
    for (row, mean) in hm.ranked_rows() {
        println!("  {:>14}: {:.4}", hm.row_labels[row], mean);
    }
    println!("\ncsv:\n{}", hm.to_csv());
    println!(
        "training curve (avg latency per epoch): {:?}",
        outcome.curve.iter().map(|l| (l * 10.0).round() / 10.0).collect::<Vec<_>>()
    );
}
