//! Fig. 4: average first-layer weight heatmap of the agent trained on a
//! 4×4 mesh under uniform-random traffic (5 ports × 3 VCs × 4 features).
//!
//! The paper's takeaway, which the printed ranking should reproduce:
//! "the hidden layer neurons tend to make the most use of the local age
//! and hop count features … distance is largely ignored."
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig04` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig04");
}
