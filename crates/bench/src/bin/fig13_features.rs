//! Fig. 13: training curves with restricted input-feature sets (payload,
//! local age, distance, hop count, all features), plus the §6.5
//! hill-climbing feature-selection procedure.
//!
//! Expected shape (paper): local age is the best single feature; the full
//! feature set matches or beats it; hill climbing selects local age first
//! and hop count second.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig13` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig13");
}
