//! Fig. 13: training curves with restricted input-feature sets (payload,
//! local age, distance, hop count, all features), plus the §6.5
//! hill-climbing feature-selection procedure.
//!
//! Expected shape (paper): local age is the best single feature; the full
//! feature set matches or beats it; hill climbing selects local age first
//! and hop count second.

use bench::{render_series, CliArgs};
use rl_arb::{hill_climb, train_synthetic, Feature, FeatureSet, TrainSpec};

fn main() {
    let args = CliArgs::parse();
    let (epochs, cycles) = if args.quick { (8, 800) } else { (40, 2_000) };

    let variants: Vec<(&str, FeatureSet)> = vec![
        ("payload", FeatureSet::only(Feature::PayloadSize)),
        ("localage", FeatureSet::only(Feature::LocalAge)),
        ("distance", FeatureSet::only(Feature::Distance)),
        ("hop", FeatureSet::only(Feature::HopCount)),
        ("allfeature", FeatureSet::synthetic()),
    ];

    let mut series = Vec::new();
    for (name, features) in variants {
        eprintln!("training with features: {name} ...");
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        spec.features = features;
        let out = train_synthetic(&spec);
        series.push((name.to_string(), out.curve));
    }

    let labels: Vec<String> = (1..=epochs).map(|e| e.to_string()).collect();
    println!("\n== Fig. 13: avg message latency (cycles) vs training epoch, per feature set ==\n");
    println!("{}", render_series("epoch", &labels, &series));

    // §6.5: hill-climbing over the synthetic feature pool.
    eprintln!("hill-climbing feature selection ...");
    let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
    spec.curriculum = Vec::new();
    spec.epochs = if args.quick { 4 } else { 12 };
    spec.cycles_per_epoch = if args.quick { 600 } else { 1_500 };
    let result = hill_climb(
        &spec,
        &[
            Feature::PayloadSize,
            Feature::LocalAge,
            Feature::Distance,
            Feature::HopCount,
        ],
        0.02,
    );
    println!("hill-climbing (§6.5) selected features, in adoption order:");
    for f in &result.selected {
        println!("  {}", f.label());
    }
    println!("settled latency: {:.1} cycles", result.latency);
    println!("evaluations performed: {}", result.history.len());
}
