//! Fig. 10: tail (slowest-copy) program execution time of seven policies across the
//! nine Table 1 workloads (four copies each, one per quadrant), normalized
//! to Global-age and averaged over several seeds.
//!
//! Expected shape (paper): same ordering as Fig. 9 with larger
//! round-robin/FIFO penalties (13.4%/4.3% vs RL-inspired) — age-agnostic
//! policies let one workload copy lag far behind.

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::{apu_sweep_seeds, geomean, render_table, sweep_seeds, train_apu_agent, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let scale = args.apu_scale();
    let max_cycles = 4_000_000;
    let seeds = sweep_seeds(args.seed, args.quick);
    eprintln!("training NN policy on bfs (the paper derives its policy from bfs training) ...");
    let nn = train_apu_agent(
        vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS],
        if args.quick { 1 } else { 3 },
        max_cycles,
        args.seed,
    )
    .freeze();

    let mut policy_names: Vec<String> = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = Vec::new();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        eprintln!("running {bench} under all policies x {} seeds ...", seeds.len());
        let specs = vec![bench.spec_scaled(scale); NUM_QUADRANTS];
        let results = apu_sweep_seeds(&specs, &seeds, max_cycles, Some(&nn), args.threads);
        if policy_names.is_empty() {
            policy_names = results.iter().map(|(n, _, _)| n.clone()).collect();
            per_policy = vec![Vec::new(); results.len()];
        }
        let values: Vec<f64> = results.iter().map(|(_, _, tail)| *tail).collect();
        let reference = *values.last().unwrap();
        for (i, v) in values.iter().enumerate() {
            per_policy[i].push(v / reference);
        }
        let mut row = vec![bench.name().to_string()];
        row.extend(values.iter().map(|v| format!("{:.3}", v / reference)));
        rows.push(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(per_policy.iter().map(|v| format!("{:.3}", geomean(v))));
    rows.push(gm_row);

    let mut headers = vec!["workload"];
    let name_refs: Vec<&str> = policy_names.iter().map(|s| s.as_str()).collect();
    headers.extend(name_refs);
    println!("\n== Fig. 10: normalized tail execution time (global-age = 1.0) ==\n");
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = bench::write_csv("results/fig10_tail_exec.csv", &headers, &rows) {
        eprintln!("csv written to {}", path.display());
    }
}
