//! Fig. 10: tail (slowest-copy) program execution time of seven policies across the
//! nine Table 1 workloads (four copies each, one per quadrant), normalized
//! to Global-age and averaged over several seeds.
//!
//! Expected shape (paper): same ordering as Fig. 9 with larger
//! round-robin/FIFO penalties (13.4%/4.3% vs RL-inspired) — age-agnostic
//! policies let one workload copy lag far behind.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig10` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig10");
}
