//! Latency-vs-offered-load curves — the classic NoC evaluation figure.
//!
//! Not a numbered figure in the paper, but the standard way to locate each
//! policy's saturation point; we used exactly this sweep to choose the
//! operating points of Figs. 5 and 12–13 (see DESIGN.md calibration
//! notes). Prints one row per injection rate with avg and p99 latency per
//! policy.

use bench::{render_table, synthetic_run, write_csv, CliArgs};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::Pattern;

fn main() {
    let args = CliArgs::parse();
    let (warmup, measure) = if args.quick { (1_000, 4_000) } else { (3_000, 15_000) };
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Fifo,
        PolicyKind::RlSynth4x4,
        PolicyKind::GlobalAge,
    ];
    let rates: Vec<f64> = (1..=11).map(|i| 0.05 * i as f64).collect();

    let mut headers: Vec<String> = vec!["rate".into()];
    for k in policies {
        headers.push(format!("{k} avg"));
        headers.push(format!("{k} p99"));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for &rate in &rates {
        eprintln!("rate {rate:.2} ...");
        let mut row = vec![format!("{rate:.2}")];
        for kind in policies {
            let s = synthetic_run(
                4,
                4,
                Pattern::UniformRandom,
                rate,
                make_arbiter(kind, args.seed),
                warmup,
                measure,
                args.seed,
            );
            row.push(format!("{:.1}", s.avg_latency()));
            row.push(format!("{}", s.latency_percentile(99.0)));
        }
        rows.push(row);
    }
    println!("\n== latency vs offered load, 4x4 uniform random ==\n");
    println!("{}", render_table(&header_refs, &rows));
    if let Ok(path) = write_csv("results/load_sweep.csv", &header_refs, &rows) {
        eprintln!("csv written to {}", path.display());
    }
}
