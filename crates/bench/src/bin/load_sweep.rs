//! Latency-vs-offered-load curves — the classic NoC evaluation figure.
//!
//! Not a numbered figure in the paper, but the standard way to locate each
//! policy's saturation point; we used exactly this sweep to choose the
//! operating points of Figs. 5 and 12–13 (see DESIGN.md calibration
//! notes). Prints one row per injection rate with avg and p99 latency per
//! policy. All `rate × policy` simulations are independent and run
//! concurrently on `--threads` workers (see [`bench::load_sweep_table`]).
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- load_sweep` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("load_sweep");
}
