//! Latency-vs-offered-load curves — the classic NoC evaluation figure.
//!
//! Not a numbered figure in the paper, but the standard way to locate each
//! policy's saturation point; we used exactly this sweep to choose the
//! operating points of Figs. 5 and 12–13 (see DESIGN.md calibration
//! notes). Prints one row per injection rate with avg and p99 latency per
//! policy. All `rate × policy` simulations are independent and run
//! concurrently on `--threads` workers (see [`bench::load_sweep_table`]).

use bench::{load_sweep_table, render_table, write_csv, CliArgs};

fn main() {
    let args = CliArgs::parse();
    eprintln!(
        "sweeping 11 rates x 4 policies on {} thread(s) ...",
        args.threads
    );
    let (headers, rows) = load_sweep_table(args.quick, args.seed, args.threads);
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n== latency vs offered load, 4x4 uniform random ==\n");
    println!("{}", render_table(&header_refs, &rows));
    if let Ok(path) = write_csv("results/load_sweep.csv", &header_refs, &rows) {
        eprintln!("csv written to {}", path.display());
    }
}
