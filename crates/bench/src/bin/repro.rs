//! `repro` — the single entry point for regenerating every figure and
//! table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- list
//! cargo run --release -p bench --bin repro -- fig09 [--quick] [--seed <n>] [--threads <n>] [--out-dir <dir>]
//! cargo run --release -p bench --bin repro -- queue fig05 fig09 [--cache-dir <dir>] [--cache-stats]
//! cargo run --release -p bench --bin repro -- train fig09 [--retrain] [--artifacts-dir <dir>]
//! cargo run --release -p bench --bin repro -- search --quick [--driver hc|evo|random] [--budget <n>]
//! ```
//!
//! Figures with an NN slot resolve their trained policy through the
//! content-addressed artifact store (`--artifacts-dir`, default
//! `results/artifacts/`): checkpoints are named by training-recipe hash,
//! so a warm store re-runs the figure with zero training steps and
//! byte-identical output. `train <figure>` resolves (training if needed)
//! a figure's artifacts without running its matrix; `--retrain` ignores
//! the cache.
//!
//! Simulation cells themselves resolve through the content-addressed
//! result cache (`--cache-dir`, default `results/cache/`): every cell is
//! keyed by its content hash, so a warm cache re-answers a figure with
//! zero simulated cycles. `queue <figure>...` batches several figures
//! through one shared job queue and cache, deduplicating cells and NN
//! training that figures share; `--cache-stats` prints a one-line
//! hit/miss summary after the run. `search` explores the design space
//! with a pluggable driver through the same queue and cache (see
//! `bench::exp::search`).
//!
//! Figure names resolve through the registry in `bench::exp::figures`;
//! legacy binary names (`fig09_avg_exec`, …) are accepted as aliases.
//! Every run prints the figure's text report to stdout (byte-identical to
//! the pre-driver binaries) and writes a versioned `RunRecord` JSON with
//! the per-cell values, seeds, normalization reference and provenance
//! stamps into `--out-dir` (default `results/`).
//!
//! The flag grammar, this help text and the usage line are all generated
//! from `bench::FLAG_REGISTRY`, so they cannot drift from the parser.

use bench::exp::{driver, figures};
use bench::{usage_flags, CliArgs, FLAG_REGISTRY};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", help_text());
        return;
    }
    let (args, positionals) = match CliArgs::parse_from(raw.into_iter()) {
        Ok(parsed) => parsed,
        Err(e) => usage(&format!("error: {e}")),
    };
    match positionals.as_slice() {
        [cmd] if cmd == "list" => {
            for def in figures::all() {
                println!("{:<22} {}", def.name, def.summary);
            }
        }
        [cmd, figure] if cmd == "train" => match driver::train_figure(figure, &args) {
            Ok(artifacts) => {
                for a in artifacts {
                    println!(
                        "{}  {}  ({})",
                        a.recipe_hash,
                        a.path.display(),
                        if a.was_cached { "cached" } else { "trained" }
                    );
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        [cmd, figs @ ..] if cmd == "queue" && !figs.is_empty() => {
            let names: Vec<&str> = figs.iter().map(String::as_str).collect();
            if let Err(e) = driver::run_figures_queued(&names, &args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        [cmd] if cmd == "queue" => usage("error: queue needs at least one figure name"),
        [figure] => {
            if let Err(e) = driver::run_figure(figure, &args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        [] => usage("error: missing figure name"),
        more => usage(&format!("error: expected one figure name, got {more:?}")),
    }
}

/// The `--help` text: subcommands, then the flag table and figure list,
/// both generated from their registries.
fn help_text() -> String {
    let mut out = String::new();
    out.push_str(&format!("usage: repro {} {}\n\n", SUBCOMMANDS, usage_flags()));
    out.push_str("subcommands:\n");
    out.push_str("  <figure>              run one figure end-to-end\n");
    out.push_str("  queue <figure>...     batch figures through one shared queue + cache\n");
    out.push_str("  train <figure>        resolve a figure's NN artifacts without running it\n");
    out.push_str("  list                  list every registered figure\n\n");
    out.push_str("flags:\n");
    for f in FLAG_REGISTRY {
        let lhs = match f.value {
            Some(v) => format!("{} {v}", f.flag),
            None => f.flag.to_string(),
        };
        out.push_str(&format!("  {lhs:<24}{}\n", f.help));
    }
    out.push_str("\nfigures:\n");
    for def in figures::all() {
        out.push_str(&format!("  {:<22}{}\n", def.name, def.summary));
    }
    out
}

const SUBCOMMANDS: &str = "<figure|queue <figure>...|train <figure>|list>";

fn usage(err: &str) -> ! {
    eprintln!("{err}");
    eprintln!("usage: repro {} {}", SUBCOMMANDS, usage_flags());
    std::process::exit(2);
}
