//! Wall-clock benchmark of the parallel sweep engine and the simulator's
//! raw throughput: runs the quick configuration of representative figure
//! cores serially (`threads = 1`) and on the worker pool, measures
//! cycles/sec on the Fig. 5 8×8 operating point under every inference
//! datapath, and writes `BENCH_sweep.json` (schema v2).
//!
//! Schema v2 adds:
//! - `sim_throughput.modes`: cycles/sec per arbitration datapath —
//!   `global_age` (the scalar hot path), `nn_f32_scalar` /
//!   `nn_f32_batched` (the frozen NN policy without/with per-router
//!   batched inference) and `nn_int8` (the fixed-point datapath).
//! - `history`: one entry per regeneration (tagged with `git describe`),
//!   carried forward from the previous file, so throughput is tracked
//!   across PRs. A fresh file is seeded with the pre-SoA baseline.
//! - `host.physical_cores` next to the scheduler-visible thread count.
//! - `sim_throughput.topology`: the fabric family of the measured
//!   operating point (always `"mesh"` today — the throughput pin tracks
//!   the paper's configuration, not the torus/ring/degraded variants).
//!
//! The APU figures (9–11) share their sweep core with `apu_sweep_seeds`,
//! so the `apu_sweep` entry below (one benchmark, all policies × seeds)
//! measures exactly the work their inner loops dispatch; the multi-minute
//! NN-training preamble is excluded because it is inherently serial and
//! identical in both modes.

use std::time::Instant;

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::sweep::default_threads;
use bench::{apu_sweep_seeds, load_sweep_table, sweep_seeds, CliArgs, Fig05Params};
use nn_mlp::Mlp;
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{
    Arbiter, FeatureBounds, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology,
};
use rl_arb::{FeatureSet, InferenceMode, NnPolicyArbiter, StateEncoder};

/// The `global_age` throughput recorded before the SoA hot-path rework
/// (scalar AoS router pipeline), used to seed a fresh history.
const PRE_SOA_BASELINE_CPS: f64 = 16_770.0;

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// One timed run on the Fig. 5 8×8 operating point: warm up, then measure
/// `cycles` simulated cycles against the wall clock.
fn one_rep(arbiter: Box<dyn Arbiter>, warmup: u64, cycles: u64, seed: u64) -> f64 {
    let topo = Topology::uniform_mesh(8, 8).unwrap();
    let cfg = SimConfig::synthetic(8, 8);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.20, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).unwrap();
    sim.run(warmup); // settle into steady state before timing
    let (secs, _) = time(|| sim.run(cycles));
    cycles as f64 / secs
}

/// Best of `reps` runs — the least-interrupted sample is the one that
/// reflects the code, not the host's background load.
fn cycles_per_sec(
    mk: &dyn Fn() -> Box<dyn Arbiter>,
    reps: u32,
    warmup: u64,
    cycles: u64,
    seed: u64,
) -> f64 {
    (0..reps)
        .map(|_| one_rep(mk(), warmup, cycles, seed))
        .fold(0.0, f64::max)
}

/// The frozen NN policy on the 8×8 operating point. The weights are
/// untrained — throughput depends only on the network's shape and the
/// datapath, not on the values — and ε is left at its deployment default
/// so the measured path is the deployed one.
fn nn_policy(seed: u64) -> NnPolicyArbiter {
    let cfg = SimConfig::synthetic(8, 8);
    let encoder = StateEncoder::new(
        5,
        cfg.num_vnets,
        FeatureSet::synthetic(),
        FeatureBounds::for_mesh(8, 8),
    );
    let net = Mlp::paper_agent(encoder.state_width(), 15, encoder.num_slots(), seed);
    NnPolicyArbiter::new(net, encoder)
}

/// `git describe --always --dirty`, or `"unknown"` outside a git checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to the scheduler-visible thread count on
/// hosts without one (or with an uninformative one).
fn physical_cores() -> usize {
    if let Ok(s) = std::fs::read_to_string("/proc/cpuinfo") {
        let mut pairs = std::collections::HashSet::new();
        let (mut phys, mut core) = (None, None);
        let field = |line: &str| {
            line.split(':')
                .nth(1)
                .and_then(|v| v.trim().parse::<u32>().ok())
        };
        for line in s.lines() {
            if line.trim().is_empty() {
                if let (Some(p), Some(c)) = (phys, core) {
                    pairs.insert((p, c));
                }
                phys = None;
                core = None;
            } else if line.starts_with("physical id") {
                phys = field(line);
            } else if line.starts_with("core id") {
                core = field(line);
            }
        }
        if let (Some(p), Some(c)) = (phys, core) {
            pairs.insert((p, c));
        }
        if !pairs.is_empty() {
            return pairs.len();
        }
    }
    default_threads()
}

/// Carries the `history` entries of an existing `BENCH_sweep.json` forward.
/// Entries are written one per line, so this is a line filter, not a JSON
/// parser; a missing or pre-v2 file yields the empty history.
fn prior_history() -> Vec<String> {
    let Ok(s) = std::fs::read_to_string("BENCH_sweep.json") else {
        return Vec::new();
    };
    let Some(start) = s.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &s[start..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .collect()
}

fn main() {
    let args = CliArgs::parse();
    // Exercise the pool even when the host reports one core (the checked-in
    // numbers come from whatever machine regenerates this file).
    let par_threads = args.threads.max(2);
    let mut entries: Vec<String> = Vec::new();

    eprintln!("[1/5] fig05 core, serial ...");
    let (fig05_serial, serial_tables) =
        time(|| bench::fig05_report(&Fig05Params::quick(args.seed, 1)));
    eprintln!("[2/5] fig05 core, {par_threads} threads ...");
    let (fig05_par, par_tables) =
        time(|| bench::fig05_report(&Fig05Params::quick(args.seed, par_threads)));
    assert_eq!(serial_tables, par_tables, "thread count changed the tables");
    entries.push(entry("fig05_synthetic", fig05_serial, fig05_par, par_threads));

    eprintln!("[3/5] load_sweep core ...");
    let (ls_serial, _) = time(|| load_sweep_table(true, args.seed, 1));
    let (ls_par, _) = time(|| load_sweep_table(true, args.seed, par_threads));
    entries.push(entry("load_sweep", ls_serial, ls_par, par_threads));

    eprintln!("[4/5] apu sweep core (bfs, all policies x seeds) ...");
    let scale = 0.08; // the --quick APU workload scale
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    let seeds = sweep_seeds(args.seed, true);
    let (apu_serial, _) = time(|| apu_sweep_seeds(&specs, &seeds, 4_000_000, None, 1));
    let (apu_par, _) = time(|| apu_sweep_seeds(&specs, &seeds, 4_000_000, None, par_threads));
    entries.push(entry("apu_sweep_bfs", apu_serial, apu_par, par_threads));

    eprintln!("[5/5] simulator throughput per inference datapath ...");
    let reps = 3;
    // The NN datapaths run an MLP per contended output port per cycle and
    // are 1–2 orders of magnitude slower than the scalar hot path, so they
    // get a shorter timed window (still thousands of arbitrations).
    let (ga_cycles, nn_cycles) = if args.quick { (4_000, 800) } else { (20_000, 4_000) };
    let seed = args.seed;
    let modes: Vec<(&str, u64, f64)> = vec![
        (
            "global_age",
            ga_cycles,
            cycles_per_sec(
                &|| make_arbiter(PolicyKind::GlobalAge, seed),
                reps,
                1_000,
                ga_cycles,
                seed,
            ),
        ),
        (
            "nn_f32_scalar",
            nn_cycles,
            cycles_per_sec(
                &|| Box::new(nn_policy(seed).with_batched(false)),
                reps,
                200,
                nn_cycles,
                seed,
            ),
        ),
        (
            "nn_f32_batched",
            nn_cycles,
            cycles_per_sec(&|| Box::new(nn_policy(seed)), reps, 200, nn_cycles, seed),
        ),
        (
            "nn_int8",
            nn_cycles,
            cycles_per_sec(
                &|| Box::new(nn_policy(seed).with_inference(InferenceMode::Int8)),
                reps,
                200,
                nn_cycles,
                seed,
            ),
        ),
    ];
    for (name, cycles, cps) in &modes {
        eprintln!("  {name}: {cps:.0} cycles/sec ({cycles} timed cycles)");
    }

    let mode_entries: Vec<String> = modes
        .iter()
        .map(|(name, cycles, cps)| {
            format!(
                "      \"{name}\": {{ \"timed_cycles\": {cycles}, \"cycles_per_sec\": {cps:.0} }}"
            )
        })
        .collect();

    let mut history = prior_history();
    if history.is_empty() {
        history.push(format!(
            "{{ \"git\": \"pre-soa-baseline\", \"global_age\": {PRE_SOA_BASELINE_CPS:.0}, \
\"note\": \"scalar AoS hot path before the SoA rework\" }}"
        ));
    }
    history.push(format!(
        "{{ \"git\": \"{}\", {} }}",
        git_describe(),
        modes
            .iter()
            .map(|(name, _, cps)| format!("\"{name}\": {cps:.0}"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let history_lines: Vec<String> = history.iter().map(|h| format!("    {h}")).collect();

    let json = format!(
        "{{\n  \"schema_version\": 2,\n  \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \
\"host\": {{ \"threads\": {threads}, \"physical_cores\": {cores} }},\n  \"figures\": [\n{figs}\n  ],\n  \
\"sim_throughput\": {{\n    \"topology\": \"mesh\",\n    \"mesh\": \"8x8\",\n    \"pattern\": \"uniform_random\",\n    \
\"rate\": 0.20,\n    \"arbiter\": \"global_age\",\n    \"reps\": {reps},\n    \"modes\": {{\n{modes}\n    }}\n  }},\n  \
\"history\": [\n{history}\n  ],\n  \
\"note\": \"serial_s is --threads 1; parallel_s uses the listed thread count. Speedups track the host's physical core count; a single-core host shows ~1.0x. cycles_per_sec is best-of-{reps} wall-clock; history carries one entry per regeneration.\"\n}}\n",
        mode = if args.quick { "--quick" } else { "full" },
        seed = args.seed,
        threads = default_threads(),
        cores = physical_cores(),
        figs = entries.join(",\n"),
        reps = reps,
        modes = mode_entries.join(",\n"),
        history = history_lines.join(",\n"),
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    eprintln!("wrote BENCH_sweep.json");
    print!("{json}");
}

fn entry(name: &str, serial_s: f64, parallel_s: f64, threads: usize) -> String {
    format!(
        "    {{ \"name\": \"{name}\", \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}, \"threads\": {threads}, \"speedup\": {:.2} }}",
        serial_s / parallel_s.max(1e-9),
    )
}
