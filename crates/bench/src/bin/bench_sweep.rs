//! Wall-clock benchmark of the parallel sweep engine: runs the quick
//! configuration of representative figure cores serially (`threads = 1`)
//! and on the worker pool, and writes `BENCH_sweep.json` with both
//! timings plus the simulator's raw cycles/sec throughput.
//!
//! The APU figures (9–11) share their sweep core with `apu_sweep_seeds`,
//! so the `apu_sweep` entry below (one benchmark, all policies × seeds)
//! measures exactly the work their inner loops dispatch; the multi-minute
//! NN-training preamble is excluded because it is inherently serial and
//! identical in both modes.

use std::time::Instant;

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::sweep::default_threads;
use bench::{apu_sweep_seeds, load_sweep_table, sweep_seeds, CliArgs, Fig05Params};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Simulated cycles per wall-second on the Fig. 5 8×8 operating point.
fn cycles_per_sec(cycles: u64, seed: u64) -> f64 {
    let topo = Topology::uniform_mesh(8, 8).unwrap();
    let cfg = SimConfig::synthetic(8, 8);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.20, cfg.num_vnets, seed);
    let mut sim = Simulator::new(
        topo,
        cfg,
        make_arbiter(PolicyKind::GlobalAge, seed),
        traffic,
    )
    .unwrap();
    sim.run(1_000); // settle into steady state before timing
    let (secs, _) = time(|| sim.run(cycles));
    cycles as f64 / secs
}

fn main() {
    let args = CliArgs::parse();
    // Exercise the pool even when the host reports one core (the checked-in
    // numbers come from whatever machine regenerates this file).
    let par_threads = args.threads.max(2);
    let mut entries: Vec<String> = Vec::new();

    eprintln!("[1/4] fig05 core, serial ...");
    let (fig05_serial, serial_tables) = time(|| bench::fig05_report(&Fig05Params::quick(args.seed, 1)));
    eprintln!("[2/4] fig05 core, {par_threads} threads ...");
    let (fig05_par, par_tables) =
        time(|| bench::fig05_report(&Fig05Params::quick(args.seed, par_threads)));
    assert_eq!(serial_tables, par_tables, "thread count changed the tables");
    entries.push(entry("fig05_synthetic", fig05_serial, fig05_par, par_threads));

    eprintln!("[3/4] load_sweep core ...");
    let (ls_serial, _) = time(|| load_sweep_table(true, args.seed, 1));
    let (ls_par, _) = time(|| load_sweep_table(true, args.seed, par_threads));
    entries.push(entry("load_sweep", ls_serial, ls_par, par_threads));

    eprintln!("[4/4] apu sweep core (bfs, all policies x seeds) ...");
    let scale = 0.08; // the --quick APU workload scale
    let specs = vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS];
    let seeds = sweep_seeds(args.seed, true);
    let (apu_serial, _) = time(|| apu_sweep_seeds(&specs, &seeds, 4_000_000, None, 1));
    let (apu_par, _) = time(|| apu_sweep_seeds(&specs, &seeds, 4_000_000, None, par_threads));
    entries.push(entry("apu_sweep_bfs", apu_serial, apu_par, par_threads));

    let cps = cycles_per_sec(20_000, args.seed);

    let json = format!(
        "{{\n  \"mode\": \"--quick\",\n  \"seed\": {},\n  \"host_threads\": {},\n  \"figures\": [\n{}\n  ],\n  \"sim_throughput\": {{\n    \"mesh\": \"8x8\",\n    \"pattern\": \"uniform_random\",\n    \"rate\": 0.20,\n    \"arbiter\": \"global_age\",\n    \"timed_cycles\": 20000,\n    \"cycles_per_sec\": {:.0}\n  }},\n  \"note\": \"serial_s is --threads 1; parallel_s uses the listed thread count. Speedups track the host's physical core count; a single-core host shows ~1.0x.\"\n}}\n",
        args.seed,
        default_threads(),
        entries.join(",\n"),
        cps,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    eprintln!("wrote BENCH_sweep.json");
    print!("{json}");
}

fn entry(name: &str, serial_s: f64, parallel_s: f64, threads: usize) -> String {
    format!(
        "    {{ \"name\": \"{name}\", \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}, \"threads\": {threads}, \"speedup\": {:.2} }}",
        serial_s / parallel_s.max(1e-9),
    )
}
