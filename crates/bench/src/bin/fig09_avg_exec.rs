//! Fig. 9: average program execution time of seven policies across the
//! nine Table 1 workloads (four copies each, one per quadrant), normalized
//! to Global-age and averaged over several seeds.
//!
//! Expected shape (paper): RL-inspired beats Round-robin (~12.5%), iSLIP
//! (~9%), FIFO (~6.7%) and ProbDist (~2.9%) on average, and is on par with
//! the impractical NN and Global-age policies.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig09` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig09");
}
