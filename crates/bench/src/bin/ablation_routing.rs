//! Design-choice ablation: routing function.
//!
//! The paper's system uses deterministic X-Y routing, and its distilled
//! arbiter encodes X-Y-specific behavior (§4.7). This binary checks how
//! the arbitration-policy ordering fares under minimal west-first
//! *adaptive* routing — a robustness check on the reproduction's
//! conclusions.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- ablation_routing` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("ablation_routing");
}
