//! Design-choice ablation: routing function.
//!
//! The paper's system uses deterministic X-Y routing, and its distilled
//! arbiter encodes X-Y-specific behavior (§4.7). This binary checks how
//! the arbitration-policy ordering fares under minimal west-first
//! *adaptive* routing — a robustness check on the reproduction's
//! conclusions.

use bench::{render_table, synthetic_run_routed, CliArgs};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{NodeId, Pattern, RoutingKind};

fn main() {
    let args = CliArgs::parse();
    let (warmup, measure) = if args.quick { (1_000, 5_000) } else { (3_000, 25_000) };

    let scenarios: Vec<(&str, Pattern, f64)> = vec![
        ("uniform@0.40", Pattern::UniformRandom, 0.40),
        ("tornado@0.30", Pattern::Tornado, 0.30),
        (
            "hotspot@0.18",
            Pattern::Hotspot {
                node: NodeId(5),
                fraction: 0.04,
            },
            0.18,
        ),
    ];
    let policies = [PolicyKind::Fifo, PolicyKind::RlSynth4x4, PolicyKind::GlobalAge];

    let mut rows = Vec::new();
    for (label, pattern, rate) in scenarios {
        for kind in policies {
            eprintln!("running {label} / {kind} ...");
            let mut row = vec![label.to_string(), kind.to_string()];
            for routing in [RoutingKind::XY, RoutingKind::WestFirstAdaptive] {
                let s = synthetic_run_routed(
                    4,
                    4,
                    pattern,
                    rate,
                    routing,
                    make_arbiter(kind, args.seed),
                    warmup,
                    measure,
                    args.seed,
                );
                row.push(format!("{:.1}", s.avg_latency()));
                row.push(format!("{}", s.latency_percentile(99.0)));
            }
            rows.push(row);
        }
    }
    println!("\n== routing ablation: X-Y vs west-first adaptive (4x4 mesh) ==\n");
    println!(
        "{}",
        render_table(
            &["scenario", "policy", "xy avg", "xy p99", "adaptive avg", "adaptive p99"],
            &rows
        )
    );
}
