//! Fig. 11: mixed-application scenarios — four different benchmarks run
//! simultaneously, one per quadrant, in compositions from 0L4H (all
//! high-injection) to 4L0H (all low-injection). Average execution time
//! normalized to Global-age.
//!
//! Expected shape (paper): under congestion (0L4H–2L2H) RL-inspired is
//! competitive with Global-age; at 4L0H the network is under-utilized and
//! policy choice hardly matters (all bars ≈ 1.0).

use apu_sim::NUM_QUADRANTS;
use apu_workloads::{mix_label, mixed_scenario, Benchmark};
use bench::{apu_sweep_seeds, render_table, sweep_seeds, train_apu_agent, CliArgs};

fn main() {
    let args = CliArgs::parse();
    let scale = args.apu_scale();
    let max_cycles = 4_000_000;
    eprintln!("training NN policy on bfs ...");
    let nn = train_apu_agent(
        vec![Benchmark::Bfs.spec_scaled(scale); NUM_QUADRANTS],
        if args.quick { 1 } else { 2 },
        max_cycles,
        args.seed,
    )
    .freeze();

    let seeds = sweep_seeds(args.seed, args.quick);
    let mut policy_names: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for n_low in 0..=NUM_QUADRANTS {
        let label = mix_label(n_low);
        eprintln!("running mix {label} x {} seeds ...", seeds.len());
        let specs = mixed_scenario(n_low, args.seed, scale);
        let apps: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        eprintln!("  quadrants: {apps:?}");
        let results = apu_sweep_seeds(&specs, &seeds, max_cycles, Some(&nn), args.threads);
        if policy_names.is_empty() {
            policy_names = results.iter().map(|(n, _, _)| n.clone()).collect();
        }
        let values: Vec<f64> = results.iter().map(|(_, avg, _)| *avg).collect();
        let reference = *values.last().unwrap();
        let mut row = vec![label];
        row.extend(values.iter().map(|v| format!("{:.3}", v / reference)));
        rows.push(row);
    }

    let mut headers = vec!["mix"];
    let name_refs: Vec<&str> = policy_names.iter().map(|s| s.as_str()).collect();
    headers.extend(name_refs);
    println!("\n== Fig. 11: mixed workloads, normalized avg execution time ==\n");
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = bench::write_csv("results/fig11_mixed.csv", &headers, &rows) {
        eprintln!("csv written to {}", path.display());
    }
}
