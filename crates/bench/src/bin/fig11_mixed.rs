//! Fig. 11: mixed-application scenarios — four different benchmarks run
//! simultaneously, one per quadrant, in compositions from 0L4H (all
//! high-injection) to 4L0H (all low-injection). Average execution time
//! normalized to Global-age.
//!
//! Expected shape (paper): under congestion (0L4H–2L2H) RL-inspired is
//! competitive with Global-age; at 4L0H the network is under-utilized and
//! policy choice hardly matters (all bars ≈ 1.0).
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig11` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig11");
}
