//! Table 3: synthesis results (latency / area / power) for the INT8 agent
//! inference engine, a round-robin arbiter, and the proposed arbiter in a
//! 6-port router, from the analytical 32 nm gate model.
//!
//! Expected shape (paper): NN orders of magnitude costlier and missing
//! 1 GHz timing; proposed arbiter a few× round-robin and meeting timing.

use bench::render_table;
use hw_cost::{rl_inspired_latency_split, table3, TechNode};

fn main() {
    let tech = TechNode::nm32();
    let rows = table3(&tech);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                format!("{:.2}", r.report.latency_ns),
                format!("{:.4}", r.report.area_mm2),
                format!("{:.2}", r.report.power_mw),
                if r.report.meets_timing { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!("== Table 3: synthesis results (analytical 32nm model) ==\n");
    println!(
        "{}",
        render_table(
            &["design", "latency (ns)", "area (mm^2)", "power (mW)", "meets 1GHz"],
            &table_rows
        )
    );
    let (p, m) = rl_inspired_latency_split(42, &tech);
    println!("proposed arbiter latency split: {p:.2} ns priority + {m:.2} ns select-max");
    println!("(paper: 8.17/1.2344/63.67 NN; 0.89/0.0012/0.07 RR; 1.10/0.0044/0.27 proposed)");
}
