//! Table 3: synthesis results (latency / area / power) for the INT8 agent
//! inference engine, a round-robin arbiter, and the proposed arbiter in a
//! 6-port router, from the analytical 32 nm gate model.
//!
//! Expected shape (paper): NN orders of magnitude costlier and missing
//! 1 GHz timing; proposed arbiter a few× round-robin and meeting timing.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- table3` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("table3");
}
