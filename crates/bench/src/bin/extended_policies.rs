//! Extended policy comparison: every arbiter in the library — including
//! the related-work additions (wavefront, ping-pong, slack-aware) the
//! paper discusses in §7 but does not plot — on a contended synthetic mesh
//! and one contended APU workload.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- extended_policies` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("extended_policies");
}
