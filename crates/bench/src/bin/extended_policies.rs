//! Extended policy comparison: every arbiter in the library — including
//! the related-work additions (wavefront, ping-pong, slack-aware) the
//! paper discusses in §7 but does not plot — on a contended synthetic mesh
//! and one contended APU workload.

use apu_sim::NUM_QUADRANTS;
use apu_workloads::Benchmark;
use bench::{apu_run, render_table, synthetic_run, CliArgs};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::Pattern;

fn main() {
    let args = CliArgs::parse();
    let (warmup, measure) = if args.quick { (1_000, 5_000) } else { (3_000, 20_000) };
    let scale = args.apu_scale();

    let kinds = [
        PolicyKind::Random,
        PolicyKind::RoundRobin,
        PolicyKind::Islip,
        PolicyKind::Wavefront,
        PolicyKind::PingPong,
        PolicyKind::Fifo,
        PolicyKind::LocalAge,
        PolicyKind::ProbDist,
        PolicyKind::SlackAware,
        PolicyKind::RlSynth4x4,
        PolicyKind::RlApu,
        PolicyKind::Algorithm2,
        PolicyKind::GlobalAge,
    ];

    let mut rows = Vec::new();
    for kind in kinds {
        eprintln!("running {kind} ...");
        let s = synthetic_run(
            4,
            4,
            Pattern::UniformRandom,
            0.42,
            make_arbiter(kind, args.seed),
            warmup,
            measure,
            args.seed,
        );
        let specs = vec![Benchmark::Spmv.spec_scaled(scale); NUM_QUADRANTS];
        let r = apu_run(specs, make_arbiter(kind, args.seed), args.seed, 4_000_000);
        rows.push(vec![
            kind.to_string(),
            format!("{:.1}", s.avg_latency()),
            format!("{}", s.latency_percentile(99.0)),
            format!("{:.3}", s.jain_fairness()),
            format!("{:.0}", r.avg_exec),
            format!("{}", r.tail_exec),
        ]);
    }
    println!("\n== extended policy comparison ==");
    println!("(synthetic: 4x4 uniform random @ 0.42; APU: spmv x 4 copies)\n");
    println!(
        "{}",
        render_table(
            &["policy", "syn avg", "syn p99", "syn jain", "apu avg exec", "apu tail"],
            &rows
        )
    );
}
