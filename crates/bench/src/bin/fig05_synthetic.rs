//! Fig. 5: message latency of FIFO, RL-inspired, NN and Global-age on 4×4
//! and 8×8 meshes under uniform-random traffic, normalized to Global-age.
//!
//! Expected shape (paper): FIFO worst, RL-inspired close to NN and
//! Global-age. In this substrate (virtual cut-through, deep per-VC
//! buffers, unbounded source queues) the separation appears primarily in
//! the *tail* of the latency distribution — the equality-of-service
//! property age-based arbitration buys — so both the mean and p99 are
//! reported; see EXPERIMENTS.md for the deviation discussion.

use bench::{render_table, synthetic_run, train_synthetic_nn, CliArgs};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::Pattern;

fn main() {
    let args = CliArgs::parse();
    let (warmup, measure) = if args.quick { (1_000, 6_000) } else { (5_000, 40_000) };
    let (epochs, epoch_cycles) = if args.quick { (8, 1_000) } else { (60, 2_000) };

    println!("== Fig. 5: message latency, uniform random (normalized to Global-age) ==\n");
    for (w, rl_kind, rate) in [
        (4u16, PolicyKind::RlSynth4x4, 0.40),
        (8u16, PolicyKind::RlSynth8x8, 0.20),
    ] {
        eprintln!("training NN policy for {w}x{w} at rate {rate} ...");
        let nn = train_synthetic_nn(w, w, rate, epochs, epoch_cycles, args.seed);
        let policies: Vec<(String, Box<dyn noc_sim::Arbiter>)> = vec![
            ("FIFO".into(), make_arbiter(PolicyKind::Fifo, args.seed)),
            ("RL-inspired".into(), make_arbiter(rl_kind, args.seed)),
            ("NN".into(), Box::new(nn)),
            ("Global-age".into(), make_arbiter(PolicyKind::GlobalAge, args.seed)),
        ];
        let mut rows_raw = Vec::new();
        for (name, arb) in policies {
            let s = synthetic_run(w, w, Pattern::UniformRandom, rate, arb, warmup, measure, args.seed);
            rows_raw.push((name, s.avg_latency(), s.latency_percentile(99.0) as f64, s.max_latency()));
        }
        let (ga_avg, ga_p99) = (rows_raw.last().unwrap().1, rows_raw.last().unwrap().2);
        let rows: Vec<Vec<String>> = rows_raw
            .iter()
            .map(|(n, avg, p99, max)| {
                vec![
                    n.clone(),
                    format!("{avg:.1}"),
                    format!("{:.2}", avg / ga_avg),
                    format!("{p99:.0}"),
                    format!("{:.2}", p99 / ga_p99),
                    format!("{max}"),
                ]
            })
            .collect();
        println!("{w}x{w} mesh @ injection rate {rate}:");
        println!(
            "{}",
            render_table(
                &["policy", "avg (cyc)", "avg norm", "p99 (cyc)", "p99 norm", "max"],
                &rows
            )
        );
    }
}
