//! Fig. 5: message latency of FIFO, RL-inspired, NN and Global-age on 4×4
//! and 8×8 meshes under uniform-random traffic, normalized to Global-age.
//!
//! Expected shape (paper): FIFO worst, RL-inspired close to NN and
//! Global-age. In this substrate (virtual cut-through, deep per-VC
//! buffers, unbounded source queues) the separation appears primarily in
//! the *tail* of the latency distribution — the equality-of-service
//! property age-based arbitration buys — so both the mean and p99 are
//! reported; see EXPERIMENTS.md for the deviation discussion.
//!
//! The four policy measurements per mesh run concurrently on `--threads`
//! workers (`--threads 1` reproduces the serial tables bit-for-bit); the
//! experiment core lives in [`bench::fig05_report`] so the determinism
//! regression test can compare thread counts in-process.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig05` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig05");
}
