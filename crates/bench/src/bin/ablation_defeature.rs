//! §5.1 de-featuring ablation: Algorithm 2 with the port condition or the
//! message-type condition removed, across the nine workloads.
//!
//! Expected shape (paper): removing port information costs up to ~6.5%
//! (2.2% average) execution time; removing message type up to ~5.1%
//! (1.2% average).
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- ablation_defeature` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("ablation_defeature");
}
