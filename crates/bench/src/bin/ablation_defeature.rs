//! §5.1 de-featuring ablation: Algorithm 2 with the port condition or the
//! message-type condition removed, across the nine workloads.
//!
//! Expected shape (paper): removing port information costs up to ~6.5%
//! (2.2% average) execution time; removing message type up to ~5.1%
//! (1.2% average).

use apu_sim::NUM_QUADRANTS;
use apu_workloads::{Benchmark, InjectionClass};
use bench::{apu_run, geomean, render_table, sweep_seeds, CliArgs};
use noc_arbiters::{make_arbiter, PolicyKind};

fn main() {
    let args = CliArgs::parse();
    let scale = args.apu_scale();
    let max_cycles = 4_000_000;
    let variants = [
        ("full", PolicyKind::RlApu),
        ("no-port", PolicyKind::RlApuNoPort),
        ("no-msgtype", PolicyKind::RlApuNoMsgType),
    ];

    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for bench in Benchmark::ALL {
        eprintln!("running {bench} ...");
        let specs = vec![bench.spec_scaled(scale); NUM_QUADRANTS];
        let seeds = sweep_seeds(args.seed, args.quick);
        let mut values = Vec::new();
        for (_, kind) in variants {
            let mut sum = 0.0;
            for &seed in &seeds {
                let r = apu_run(specs.clone(), make_arbiter(kind, seed), seed, max_cycles);
                sum += r.avg_exec;
            }
            values.push(sum / seeds.len() as f64);
        }
        let full = values[0];
        let mut row = vec![bench.name().to_string()];
        for (i, v) in values.iter().enumerate() {
            ratios[i].push(v / full);
            row.push(format!("{:.3}", v / full));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for r in &ratios {
        gm.push(format!("{:.3}", geomean(r)));
    }
    rows.push(gm);
    // The de-featured terms matter most where the NoC is actually
    // contended, so also report the high-injection subset (paper §5.1's
    // effects are likewise strongest on congested workloads).
    let hi_idx: Vec<usize> = Benchmark::ALL
        .iter()
        .enumerate()
        .filter(|(_, b)| b.injection_class() == InjectionClass::High)
        .map(|(i, _)| i)
        .collect();
    let mut gm_hi = vec!["geomean (high-inj)".to_string()];
    for r in &ratios {
        let subset: Vec<f64> = hi_idx.iter().map(|&i| r[i]).collect();
        gm_hi.push(format!("{:.3}", geomean(&subset)));
    }
    rows.push(gm_hi);

    println!("\n== §5.1 ablation: avg execution time relative to full Algorithm 2 ==\n");
    println!(
        "{}",
        render_table(&["workload", "full", "no-port", "no-msgtype"], &rows)
    );
}
