//! Fig. 12: training curves under the three reward functions — global_age,
//! reciprocal accumulated latency, and link utilization.
//!
//! Expected shape (paper §6.3): only global_age converges to low latency;
//! acc_latency and link_util hardly converge because their reward is
//! global and delayed rather than tied to the specific decision.

use bench::{render_series, CliArgs};
use rl_arb::{train_synthetic, RewardKind, TrainSpec};

fn main() {
    let args = CliArgs::parse();
    let (epochs, cycles) = if args.quick { (10, 800) } else { (50, 2_000) };

    let mut series = Vec::new();
    for reward in RewardKind::ALL {
        eprintln!("training with reward {} ...", reward.label());
        // Cold start at the edge of saturation (like the paper's Fig. 12,
        // whose y-axis starts near 1000 cycles): an agent that learns pulls
        // the network out of congestion; one that does not stays there.
        let mut spec = TrainSpec::tuned_synthetic(4, 0.40, args.seed);
        spec.curriculum = Vec::new();
        spec.epochs = epochs;
        spec.cycles_per_epoch = cycles;
        spec.agent = spec.agent.with_reward(reward);
        let out = train_synthetic(&spec);
        let converged = out.converged(1.15);
        eprintln!(
            "  final latency {:.1}, best {:.1}, converged: {converged}",
            out.final_latency(),
            out.best_latency()
        );
        series.push((reward.label().to_string(), out.curve));
    }

    let labels: Vec<String> = (1..=epochs).map(|e| e.to_string()).collect();
    println!("\n== Fig. 12: avg message latency (cycles) vs training epoch ==\n");
    println!("{}", render_series("epoch", &labels, &series));
}
