//! Fig. 12: training curves under the three reward functions — global_age,
//! reciprocal accumulated latency, and link utilization.
//!
//! Expected shape (paper §6.3): only global_age converges to low latency;
//! acc_latency and link_util hardly converge because their reward is
//! global and delayed rather than tied to the specific decision.
//!
//! This binary is a thin shim over the unified driver: it is exactly
//! `cargo run -p bench --bin repro -- fig12` and exists so historical
//! invocations keep working.

fn main() {
    bench::exp::driver::shim_main("fig12");
}
