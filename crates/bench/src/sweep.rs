//! A dependency-free worker pool for embarrassingly parallel experiment
//! sweeps.
//!
//! Every figure binary boils down to "run N independent simulations, then
//! aggregate". Each simulation is seeded and self-contained, so the only
//! thing parallelism must preserve is the *order* of results —
//! [`run_parallel`] guarantees result `i` corresponds to job `i` regardless
//! of thread count or completion order, which is what makes `--threads 1`
//! and `--threads 8` produce byte-identical tables.
//!
//! Built on [`std::thread::scope`] so jobs may borrow from the caller's
//! stack (workload specs, trained networks) without `Arc`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1 if it
/// cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every job on a pool of `threads` scoped workers and
/// returns the results **in input order**.
///
/// With `threads == 1` (or fewer than two jobs) no threads are spawned and
/// the jobs run serially on the caller's thread, reproducing the historical
/// serial path bit-for-bit. Otherwise workers pull jobs from a shared
/// atomic cursor (dynamic scheduling: long jobs don't convoy short ones)
/// and write each result into its job's dedicated slot.
///
/// # Panics
///
/// If `threads == 0`, or if `f` panics on any job (the panic is propagated
/// when the scope joins).
pub fn run_parallel<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || jobs.len() < 2 {
        return jobs.into_iter().map(f).collect();
    }
    let n = jobs.len();
    // Jobs are taken (moved out) exactly once each; results land in the
    // slot matching their job index. Per-slot mutexes are uncontended — the
    // atomic cursor hands every index to exactly one worker.
    let queue: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let (queue, slots_ref, cursor, f) = (&queue, &slots, &cursor, &f);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job queue poisoned")
                    .take()
                    .expect("job dispatched twice");
                let result = f(job);
                *slots_ref[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_parallel(jobs, 8, |j| j * j);
        let expected: Vec<u64> = (0..100).map(|j| j * j).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u32> = (0..37).collect();
        let serial = run_parallel(jobs.clone(), 1, |j| j.wrapping_mul(2654435761));
        let parallel = run_parallel(jobs, 5, |j| j.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_parallel(vec![1, 2, 3], 64, |j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_job() {
        let none: Vec<i32> = run_parallel(Vec::new(), 4, |j: i32| j);
        assert!(none.is_empty());
        assert_eq!(run_parallel(vec![7], 4, |j| j * 3), vec![21]);
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let table: Vec<u64> = (0..16).map(|i| i * 10).collect();
        let out = run_parallel((0..16usize).collect(), 4, |i| table[i] + 1);
        assert_eq!(out[15], 151);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        run_parallel(vec![1], 0, |j: i32| j);
    }
}
