//! # bench — experiment harnesses behind every figure and table
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper
//! (see `DESIGN.md` for the index); this library holds the shared
//! machinery: latency/execution-time measurement loops, agent training
//! helpers for the "NN" policy, and plain-text table/series rendering.
//!
//! All binaries accept `--quick` (shrink workloads for smoke runs),
//! `--seed <n>`, `--threads <n>` (worker count for the parallel sweep
//! engine in [`sweep`]; `--threads 1` reproduces the serial path
//! bit-for-bit), and `--inference <f32|int8>` (numeric datapath for
//! NN-policy inference; the `f32` default is bit-identical to the
//! historical runs).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exp;
pub mod sweep;

use apu_sim::{run_apu, ApuRunResult, EngineConfig, WorkloadSpec};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Arbiter, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};
use noc_sim::BufferController;
use rl_arb::{AgentConfig, DqnAgent, FeatureSet, NnPolicyArbiter, OnlinePolicy, RlVcController};

/// One entry of the shared flag grammar.
///
/// The registry is the single source the usage line ([`usage_flags`]),
/// `repro --help` and the parser-sync test are generated from, so a flag
/// added to [`CliArgs::parse_from`] cannot drift out of the help text (and
/// vice versa) without a test failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagSpec {
    /// The flag itself, e.g. `"--seed"`.
    pub flag: &'static str,
    /// Value placeholder for value-taking flags (`None` for booleans).
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// Every flag the experiment layer accepts — there is exactly one flag
/// grammar across the whole layer.
pub const FLAG_REGISTRY: &[FlagSpec] = &[
    FlagSpec {
        flag: "--quick",
        value: None,
        help: "shrink workloads/epochs for a fast smoke run",
    },
    FlagSpec {
        flag: "--seed",
        value: Some("<n>"),
        help: "base seed for all stochastic components (default 42)",
    },
    FlagSpec {
        flag: "--threads",
        value: Some("<n>"),
        help: "worker threads for independent-simulation sweeps (1 = serial)",
    },
    FlagSpec {
        flag: "--out-dir",
        value: Some("<dir>"),
        help: "directory for structured outputs (default results/)",
    },
    FlagSpec {
        flag: "--artifacts-dir",
        value: Some("<dir>"),
        help: "content-addressed trained-artifact store (default results/artifacts/)",
    },
    FlagSpec {
        flag: "--cache-dir",
        value: Some("<dir>"),
        help: "content-addressed result cache (default results/cache/)",
    },
    FlagSpec {
        flag: "--cache-stats",
        value: None,
        help: "print the end-of-run cells/hits/misses/cycles summary",
    },
    FlagSpec {
        flag: "--retrain",
        value: None,
        help: "ignore cached artifacts and train fresh ones",
    },
    FlagSpec {
        flag: "--quiet",
        value: None,
        help: "suppress progress chatter on stderr",
    },
    FlagSpec {
        flag: "--inference",
        value: Some("<f32|int8>"),
        help: "numeric datapath for NN-policy inference (default f32)",
    },
    FlagSpec {
        flag: "--driver",
        value: Some("<hc|evo|random>"),
        help: "search driver for `repro search` (default hc)",
    },
    FlagSpec {
        flag: "--budget",
        value: Some("<n>"),
        help: "evaluation budget for `repro search` (default 32)",
    },
];

/// The flag portion of every binary's usage line, generated from
/// [`FLAG_REGISTRY`].
pub fn usage_flags() -> String {
    FLAG_REGISTRY
        .iter()
        .map(|f| match f.value {
            Some(v) => format!("[{} {v}]", f.flag),
            None => format!("[{}]", f.flag),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Command-line options shared by the `repro` driver and every figure shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Shrink workloads/epochs for a fast smoke run.
    pub quick: bool,
    /// Base seed for all stochastic components.
    pub seed: u64,
    /// Worker threads for independent-simulation sweeps (default: the
    /// host's available parallelism; `1` forces the serial path).
    pub threads: usize,
    /// Directory for structured outputs (RunRecord JSON, CSV).
    pub out_dir: std::path::PathBuf,
    /// The content-addressed trained-artifact store (checkpoints named by
    /// recipe hash; see `exp::artifacts`).
    pub artifacts_dir: std::path::PathBuf,
    /// The content-addressed result cache (cells named by job hash; see
    /// `exp::cache`).
    pub cache_dir: std::path::PathBuf,
    /// Print the end-of-run cache summary line (cells / hits / misses /
    /// simulated cycles).
    pub cache_stats: bool,
    /// Ignore cached artifacts and train fresh ones.
    pub retrain: bool,
    /// Suppress progress chatter on stderr (tables still print to stdout).
    pub quiet: bool,
    /// Numeric datapath for NN-policy inference: full-precision float (the
    /// default, bit-identical to the historical runs) or INT8 fixed-point.
    pub inference: rl_arb::InferenceMode,
    /// Search driver for `repro search` (`hc`, `evo` or `random`; only
    /// consulted by the search figure).
    pub driver: String,
    /// Evaluation budget for `repro search`: the maximum number of design
    /// points the driver may evaluate.
    pub budget: usize,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            quick: false,
            seed: 42,
            threads: sweep::default_threads(),
            out_dir: "results".into(),
            artifacts_dir: "results/artifacts".into(),
            cache_dir: "results/cache".into(),
            cache_stats: false,
            retrain: false,
            quiet: false,
            inference: rl_arb::InferenceMode::F32,
            driver: "hc".into(),
            budget: 32,
        }
    }
}

impl CliArgs {
    /// Parses the shared flags (exactly the [`FLAG_REGISTRY`] grammar)
    /// from an argument iterator. Non-flag arguments are returned as
    /// positionals (the driver's figure name); unknown flags are errors —
    /// never silently ignored.
    pub fn parse_from(
        args: impl Iterator<Item = String>,
    ) -> Result<(Self, Vec<String>), String> {
        let mut out = CliArgs::default();
        let mut positionals = Vec::new();
        let mut it = args;
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs an integer, got '{v}'"))?;
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = v
                        .parse()
                        .map_err(|_| format!("--threads needs an integer, got '{v}'"))?;
                    if out.threads == 0 {
                        return Err("--threads needs a positive integer".into());
                    }
                }
                "--out-dir" => {
                    out.out_dir = it.next().ok_or("--out-dir needs a value")?.into();
                }
                "--artifacts-dir" => {
                    out.artifacts_dir =
                        it.next().ok_or("--artifacts-dir needs a value")?.into();
                }
                "--cache-dir" => {
                    out.cache_dir = it.next().ok_or("--cache-dir needs a value")?.into();
                }
                "--cache-stats" => out.cache_stats = true,
                "--retrain" => out.retrain = true,
                "--quiet" => out.quiet = true,
                "--inference" => {
                    let v = it.next().ok_or("--inference needs a value (f32 or int8)")?;
                    out.inference = v.parse()?;
                }
                "--driver" => {
                    let v = it.next().ok_or("--driver needs a value (hc, evo or random)")?;
                    if !matches!(v.as_str(), "hc" | "evo" | "random") {
                        return Err(format!("--driver must be hc, evo or random, got '{v}'"));
                    }
                    out.driver = v;
                }
                "--budget" => {
                    let v = it.next().ok_or("--budget needs a value")?;
                    out.budget = v
                        .parse()
                        .map_err(|_| format!("--budget needs an integer, got '{v}'"))?;
                    if out.budget == 0 {
                        return Err("--budget needs a positive integer".into());
                    }
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag '{flag}'"));
                }
                other => positionals.push(other.to_string()),
            }
        }
        Ok((out, positionals))
    }

    /// Parses the process arguments for a single-figure binary (flags only,
    /// no positionals). On bad input prints the usage message to stderr and
    /// exits with status 2 instead of panicking.
    pub fn parse() -> Self {
        let parsed = Self::parse_from(std::env::args().skip(1));
        match parsed {
            Ok((args, positionals)) if positionals.is_empty() => args,
            Ok((_, positionals)) => usage_exit(&format!(
                "unexpected argument '{}'",
                positionals[0]
            )),
            Err(e) => usage_exit(&e),
        }
    }

    /// Workload scale factor for APU runs.
    pub fn apu_scale(&self) -> f64 {
        if self.quick {
            0.08
        } else {
            0.5
        }
    }
}

/// Prints an argument error plus the shared usage line and exits(2).
fn usage_exit(err: &str) -> ! {
    let bin = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or(p.clone())
        })
        .unwrap_or_else(|| "bench".into());
    eprintln!("error: {err}");
    eprintln!("usage: {bin} {}", usage_flags());
    std::process::exit(2);
}

/// Measures the steady-state average message latency of a policy on a
/// synthetic-traffic mesh: `warmup` cycles discarded, `measure` cycles
/// counted.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_latency(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> f64 {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let cfg = SimConfig::synthetic(width, height);
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().avg_latency()
}

/// Trains a DQN agent on a synthetic mesh and freezes it into the "NN"
/// policy (used by Fig. 5).
pub fn train_synthetic_nn(
    width: u16,
    height: u16,
    rate: f64,
    epochs: usize,
    cycles_per_epoch: u64,
    seed: u64,
) -> NnPolicyArbiter {
    let mut spec = rl_arb::TrainSpec::tuned_synthetic(width, rate, seed);
    spec.height = height;
    spec.epochs = epochs;
    spec.cycles_per_epoch = cycles_per_epoch;
    rl_arb::train_synthetic(&spec).agent.freeze()
}

/// Trains a DQN agent on the APU system by running the given workload
/// repeatedly ("we execute the same set of model files repeatedly until the
/// training converges", §4.2), and returns the trained agent (freeze it for
/// the "NN" policy, or inspect its weights for the Fig. 7 heatmap).
pub fn train_apu_agent(
    specs: Vec<WorkloadSpec>,
    repeats: usize,
    max_cycles_per_run: u64,
    seed: u64,
) -> DqnAgent {
    let mut env =
        rl_arb::ApuEnv::from_workloads(specs, repeats, max_cycles_per_run, seed, FeatureSet::full());
    rl_arb::Trainer::new(AgentConfig::tuned_apu(seed)).run(&mut env).agent
}

/// Runs one APU experiment (four workload copies) under a policy.
pub fn apu_run(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    seed: u64,
    max_cycles: u64,
) -> ApuRunResult {
    run_apu(specs, arbiter, EngineConfig::default(), seed, max_cycles)
}

/// [`apu_run`] with an optional deterministic fault plan forwarded into
/// the APU simulator. `None` is bit-identical to [`apu_run`].
pub fn apu_run_with_faults(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    seed: u64,
    max_cycles: u64,
    faults: Option<&noc_sim::FaultPlan>,
) -> ApuRunResult {
    apu_sim::run_apu_with_faults(specs, arbiter, EngineConfig::default(), seed, max_cycles, faults)
}

/// Renders a plain-text table: header row, then rows of cells.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders aligned numeric series (e.g. training curves): one row per
/// label, one column per series; missing samples render as `-`.
pub fn render_series(title: &str, labels: &[String], series: &[(String, Vec<f64>)]) -> String {
    let mut headers = vec![title.to_string()];
    headers.extend(series.iter().map(|(name, _)| name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let mut row = vec![label.clone()];
            for (_, values) in series {
                row.push(
                    values
                        .get(i)
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    render_table(&header_refs, &rows)
}

/// A named, thread-constructible arbitration policy.
///
/// The parallel sweep engine needs to build a fresh `Box<dyn Arbiter>`
/// inside each worker (trait objects are not `Send` here, but the *recipe*
/// is), so policies are carried as specs and instantiated per job. Builtin
/// policies defer to [`noc_arbiters::make_arbiter`] with the job's seed —
/// exactly what the serial path did — and the NN policy clones the trained
/// network, exactly as the serial line-up cloned it per seed.
#[derive(Debug, Clone)]
pub struct PolicySpec {
    /// Display name for tables/CSV headers.
    pub name: String,
    kind: PolicySpecKind,
    vc_ctl: Option<VcCtlConfig>,
}

#[derive(Debug, Clone)]
enum PolicySpecKind {
    Builtin(PolicyKind),
    // Boxed: the trained network dwarfs the registry tag.
    Nn(Box<NnPolicyArbiter>),
    // Online learning: the prototype (artifact warm start) is re-seeded
    // per run so each sweep seed gets its own exploration stream.
    NnOnline(Box<OnlinePolicy>),
}

/// Configuration of the learned per-VC buffer controller a [`PolicySpec`]
/// can attach (see [`rl_arb::RlVcController`] for the knob semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcCtlConfig {
    /// Cycles between reallocation decisions.
    pub epoch: u64,
    /// Credits withheld per VC when the withhold arm wins.
    pub withhold_flits: u32,
    /// Bandit exploration rate.
    pub epsilon: f64,
    /// Bandit learning rate (EMA step toward the observed reward).
    pub lr: f64,
}

impl Default for VcCtlConfig {
    fn default() -> Self {
        // Mirrors `RlVcController::paper_default`.
        VcCtlConfig { epoch: 64, withhold_flits: 2, epsilon: 0.05, lr: 0.2 }
    }
}

impl PolicySpec {
    /// A spec for one of the registry policies.
    pub fn builtin(name: impl Into<String>, kind: PolicyKind) -> Self {
        PolicySpec {
            name: name.into(),
            kind: PolicySpecKind::Builtin(kind),
            vc_ctl: None,
        }
    }

    /// A spec for a frozen trained network ("NN" column).
    pub fn nn(name: impl Into<String>, nn: NnPolicyArbiter) -> Self {
        PolicySpec {
            name: name.into(),
            kind: PolicySpecKind::Nn(Box::new(nn)),
            vc_ctl: None,
        }
    }

    /// A spec for an online-learning policy ("NN-online" column). The
    /// prototype's network/encoder/hyperparameters are kept; its RNG is
    /// re-keyed with the job seed at [`Self::build`] time.
    pub fn nn_online(name: impl Into<String>, proto: OnlinePolicy) -> Self {
        PolicySpec {
            name: name.into(),
            kind: PolicySpecKind::NnOnline(Box::new(proto)),
            vc_ctl: None,
        }
    }

    /// Attaches a learned per-VC buffer controller to this policy's runs.
    pub fn with_vc_ctl(mut self, cfg: VcCtlConfig) -> Self {
        self.vc_ctl = Some(cfg);
        self
    }

    /// Instantiates the arbiter for one run.
    pub fn build(&self, seed: u64) -> Box<dyn Arbiter> {
        match &self.kind {
            PolicySpecKind::Builtin(kind) => make_arbiter(*kind, seed),
            PolicySpecKind::Nn(nn) => Box::new((**nn).clone()),
            PolicySpecKind::NnOnline(proto) => {
                let cfg = AgentConfig { seed, ..proto.config().clone() };
                Box::new(OnlinePolicy::new(
                    proto.network().clone(),
                    proto.encoder().clone(),
                    cfg,
                ))
            }
        }
    }

    /// Instantiates the attached buffer controller for one run, if any.
    /// The controller seed is decorrelated from the traffic/arbiter seed
    /// so the two learned decision points draw independent streams.
    pub fn build_controller(&self, seed: u64) -> Option<Box<dyn BufferController>> {
        self.vc_ctl.map(|c| {
            Box::new(RlVcController::new(
                c.epoch,
                c.withhold_flits,
                c.epsilon,
                c.lr,
                seed ^ 0xBC_0571,
            )) as Box<dyn BufferController>
        })
    }
}

/// The Fig. 9/10/11 policy line-up as specs, in the paper's presentation
/// order. `nn` supplies the frozen trained network when the sweep includes
/// the "NN" column.
pub fn apu_policy_specs(nn: Option<NnPolicyArbiter>) -> Vec<PolicySpec> {
    let mut v = vec![
        PolicySpec::builtin("Round-robin", PolicyKind::RoundRobin),
        PolicySpec::builtin("iSLIP", PolicyKind::Islip),
        PolicySpec::builtin("FIFO", PolicyKind::Fifo),
        PolicySpec::builtin("ProbDist", PolicyKind::ProbDist),
        PolicySpec::builtin("RL-inspired", PolicyKind::RlApu),
    ];
    if let Some(nn) = nn {
        v.push(PolicySpec::nn("NN", nn));
    }
    v.push(PolicySpec::builtin("Global-age", PolicyKind::GlobalAge));
    v
}

/// The Fig. 9/10/11 policy line-up, pre-built for one seed.
pub fn apu_policy_lineup(
    seed: u64,
    nn: Option<NnPolicyArbiter>,
) -> Vec<(String, Box<dyn Arbiter>)> {
    apu_policy_specs(nn)
        .into_iter()
        .map(|spec| {
            let arb = spec.build(seed);
            (spec.name, arb)
        })
        .collect()
}

/// Runs one benchmark's four-copies experiment under every policy in the
/// line-up and returns `(policy name, result)` pairs.
pub fn apu_sweep_one(
    specs: &[WorkloadSpec],
    seed: u64,
    max_cycles: u64,
    nn: Option<&NnPolicyArbiter>,
) -> Vec<(String, ApuRunResult)> {
    apu_policy_lineup(seed, nn.cloned())
        .into_iter()
        .map(|(name, arb)| {
            let r = apu_run(specs.to_vec(), arb, seed, max_cycles);
            (name, r)
        })
        .collect()
}

/// Multi-seed sweep: every policy runs the experiment once per seed;
/// returns `(policy name, mean avg-exec, mean tail-exec)` rows. Seed
/// averaging tames the run-to-run variance of the statistical workloads.
///
/// All `seeds × policies` simulations are independent, so they dispatch
/// through [`sweep::run_parallel`] on `threads` workers. Results are
/// accumulated in the same (seed-major, policy-minor) order as the
/// historical serial loop, so the output is identical for any `threads`.
pub fn apu_sweep_seeds(
    specs: &[WorkloadSpec],
    seeds: &[u64],
    max_cycles: u64,
    nn: Option<&NnPolicyArbiter>,
    threads: usize,
) -> Vec<(String, f64, f64)> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let policies = apu_policy_specs(nn.cloned());
    let jobs: Vec<(u64, &PolicySpec)> = seeds
        .iter()
        .flat_map(|&seed| policies.iter().map(move |p| (seed, p)))
        .collect();
    let results = sweep::run_parallel(jobs, threads, |(seed, policy)| {
        apu_run(specs.to_vec(), policy.build(seed), seed, max_cycles)
    });
    let n_policies = policies.len();
    let mut avg_sums = vec![0.0; n_policies];
    let mut tail_sums = vec![0.0; n_policies];
    for (j, r) in results.into_iter().enumerate() {
        avg_sums[j % n_policies] += r.avg_exec;
        tail_sums[j % n_policies] += r.tail_exec as f64;
    }
    let n = seeds.len() as f64;
    policies
        .into_iter()
        .zip(avg_sums.into_iter().zip(tail_sums))
        .map(|(p, (a, t))| (p.name, a / n, t / n))
        .collect()
}

/// The seed list used by the figure binaries.
pub fn sweep_seeds(base: u64, quick: bool) -> Vec<u64> {
    if quick {
        vec![base, base + 1]
    } else {
        vec![base, base + 1, base + 2, base + 3]
    }
}

/// Formats a normalized row: each value divided by the reference (last)
/// policy's value.
pub fn normalized_row(label: &str, values: &[f64]) -> Vec<String> {
    let reference = *values.last().expect("non-empty row");
    let mut row = vec![label.to_string()];
    for v in values {
        row.push(format!("{:.3}", v / reference));
    }
    row
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Like [`synthetic_latency`] but returns the full statistics of the
/// measurement window.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_run(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> noc_sim::SimStats {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let cfg = SimConfig::synthetic(width, height);
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().clone()
}

/// Parameters for the Fig. 5 experiment core ([`fig05_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig05Params {
    /// Warmup cycles discarded before the measurement window.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Training epochs for the NN policy.
    pub epochs: usize,
    /// Cycles per training epoch.
    pub epoch_cycles: u64,
    /// Base seed for training, traffic and seeded policies.
    pub seed: u64,
    /// Sweep worker threads.
    pub threads: usize,
}

impl Fig05Params {
    /// The `--quick` configuration of the `fig05_synthetic` binary.
    pub fn quick(seed: u64, threads: usize) -> Self {
        Fig05Params {
            warmup: 1_000,
            measure: 6_000,
            epochs: 8,
            epoch_cycles: 1_000,
            seed,
            threads,
        }
    }

    /// The full configuration of the `fig05_synthetic` binary.
    pub fn full(seed: u64, threads: usize) -> Self {
        Fig05Params {
            warmup: 5_000,
            measure: 40_000,
            epochs: 60,
            epoch_cycles: 2_000,
            seed,
            threads,
        }
    }
}

/// The Fig. 5 experiment core: per mesh (4×4 and 8×8), trains the NN
/// policy, measures FIFO / RL-inspired / NN / Global-age under
/// uniform-random traffic — the four runs dispatched through
/// [`sweep::run_parallel`] — and renders the normalized latency tables.
///
/// A pure function of its parameters: equal `Fig05Params` (including
/// different `threads` values) yield byte-identical text, which the
/// determinism regression test in `tests/determinism.rs` pins down.
pub fn fig05_report(p: &Fig05Params) -> String {
    let mut out = String::new();
    for (w, rl_kind, rate) in [
        (4u16, PolicyKind::RlSynth4x4, 0.40),
        (8u16, PolicyKind::RlSynth8x8, 0.20),
    ] {
        rl_arb::progress!("training NN policy for {w}x{w} at rate {rate} ...");
        let nn = train_synthetic_nn(w, w, rate, p.epochs, p.epoch_cycles, p.seed);
        let policies = vec![
            PolicySpec::builtin("FIFO", PolicyKind::Fifo),
            PolicySpec::builtin("RL-inspired", rl_kind),
            PolicySpec::nn("NN", nn),
            PolicySpec::builtin("Global-age", PolicyKind::GlobalAge),
        ];
        let rows_raw: Vec<(String, f64, f64, u64)> =
            sweep::run_parallel(policies, p.threads, |spec| {
                let s = synthetic_run(
                    w,
                    w,
                    Pattern::UniformRandom,
                    rate,
                    spec.build(p.seed),
                    p.warmup,
                    p.measure,
                    p.seed,
                );
                (
                    spec.name,
                    s.avg_latency(),
                    s.latency_percentile(99.0) as f64,
                    s.max_latency(),
                )
            });
        let (ga_avg, ga_p99) = (rows_raw.last().unwrap().1, rows_raw.last().unwrap().2);
        let rows: Vec<Vec<String>> = rows_raw
            .iter()
            .map(|(n, avg, p99, max)| {
                vec![
                    n.clone(),
                    format!("{avg:.1}"),
                    format!("{:.2}", avg / ga_avg),
                    format!("{p99:.0}"),
                    format!("{:.2}", p99 / ga_p99),
                    format!("{max}"),
                ]
            })
            .collect();
        out.push_str(&format!("{w}x{w} mesh @ injection rate {rate}:\n"));
        out.push_str(&render_table(
            &["policy", "avg (cyc)", "avg norm", "p99 (cyc)", "p99 norm", "max"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// The load-sweep experiment core: latency vs offered load for four
/// policies on a 4×4 uniform-random mesh, all `rate × policy` runs
/// dispatched through [`sweep::run_parallel`]. Returns `(headers, rows)`
/// ready for [`render_table`] / [`write_csv`].
pub fn load_sweep_table(
    quick: bool,
    seed: u64,
    threads: usize,
) -> (Vec<String>, Vec<Vec<String>>) {
    let (warmup, measure) = if quick { (1_000, 4_000) } else { (3_000, 15_000) };
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Fifo,
        PolicyKind::RlSynth4x4,
        PolicyKind::GlobalAge,
    ];
    let rates: Vec<f64> = (1..=11).map(|i| 0.05 * i as f64).collect();

    let mut headers: Vec<String> = vec!["rate".into()];
    for k in policies {
        headers.push(format!("{k} avg"));
        headers.push(format!("{k} p99"));
    }

    let jobs: Vec<(f64, PolicyKind)> = rates
        .iter()
        .flat_map(|&rate| policies.iter().map(move |&kind| (rate, kind)))
        .collect();
    let stats = sweep::run_parallel(jobs, threads, |(rate, kind)| {
        synthetic_run(
            4,
            4,
            Pattern::UniformRandom,
            rate,
            make_arbiter(kind, seed),
            warmup,
            measure,
            seed,
        )
    });

    let rows = rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let mut row = vec![format!("{rate:.2}")];
            for s in &stats[ri * policies.len()..(ri + 1) * policies.len()] {
                row.push(format!("{:.1}", s.avg_latency()));
                row.push(format!("{}", s.latency_percentile(99.0)));
            }
            row
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2.50".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn render_series_handles_ragged_data() {
        let out = render_series(
            "epoch",
            &["1".into(), "2".into()],
            &[("a".into(), vec![1.0]), ("b".into(), vec![2.0, 3.0])],
        );
        assert!(out.contains('-'), "missing placeholder for ragged series");
    }

    #[test]
    fn inference_flag_parses_both_modes_and_defaults_to_f32() {
        let (args, _) = CliArgs::parse_from(std::iter::empty()).unwrap();
        assert_eq!(args.inference, rl_arb::InferenceMode::F32);
        let (args, _) = CliArgs::parse_from(
            ["--inference".to_string(), "int8".to_string()].into_iter(),
        )
        .unwrap();
        assert_eq!(args.inference, rl_arb::InferenceMode::Int8);
        let (args, _) = CliArgs::parse_from(
            ["--inference".to_string(), "f32".to_string()].into_iter(),
        )
        .unwrap();
        assert_eq!(args.inference, rl_arb::InferenceMode::F32);
    }

    #[test]
    fn inference_flag_rejects_unknown_modes() {
        let err = CliArgs::parse_from(
            ["--inference".to_string(), "fp16".to_string()].into_iter(),
        )
        .unwrap_err();
        assert!(err.contains("fp16"), "unhelpful error: {err}");
        let err = CliArgs::parse_from(["--inference".to_string()].into_iter()).unwrap_err();
        assert!(err.contains("--inference"), "unhelpful error: {err}");
    }

    #[test]
    fn usage_lists_inference_flag() {
        assert!(usage_flags().contains("--inference <f32|int8>"));
        assert!(usage_flags().contains("--driver <hc|evo|random>"));
        assert!(usage_flags().contains("--budget <n>"));
    }

    #[test]
    fn every_registry_flag_parses() {
        // The registry and the parser must agree: every registered flag —
        // with a plausible value when it takes one — must be accepted by
        // `parse_from`. A flag added to one side but not the other fails
        // here instead of silently drifting out of the help text.
        for f in FLAG_REGISTRY {
            let value = f.value.map(|v| match v {
                "<n>" => "3",
                "<dir>" => "tmp",
                "<f32|int8>" => "int8",
                "<hc|evo|random>" => "random",
                other => panic!("unknown placeholder {other} — extend this test"),
            });
            let args = std::iter::once(f.flag.to_string()).chain(value.map(String::from));
            let (_, positionals) =
                CliArgs::parse_from(args).unwrap_or_else(|e| panic!("{} rejected: {e}", f.flag));
            assert!(positionals.is_empty(), "{} left positionals behind", f.flag);
        }
    }

    #[test]
    fn search_flags_parse_and_validate() {
        let (args, _) = CliArgs::parse_from(
            ["--driver", "evo", "--budget", "8"].iter().map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(args.driver, "evo");
        assert_eq!(args.budget, 8);
        assert!(CliArgs::parse_from(
            ["--budget", "0"].iter().map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn synthetic_latency_smoke() {
        let l = synthetic_latency(
            4,
            4,
            Pattern::UniformRandom,
            0.05,
            Box::new(noc_sim::arbiters::FifoArbiter::new()),
            200,
            500,
            1,
        );
        assert!(l > 0.0);
    }
}

/// Variant of [`synthetic_run`] with an explicit routing function.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_run_routed(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    routing: noc_sim::RoutingKind,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> noc_sim::SimStats {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let mut cfg = SimConfig::synthetic(width, height);
    cfg.routing = routing;
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().clone()
}

/// Writes a CSV file next to the printed table: header row plus data rows.
/// Cells are quoted only when needed. Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let path = path.as_ref().to_path_buf();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod csv_tests {
    use super::write_csv;

    #[test]
    fn csv_quotes_only_when_needed() {
        let dir = std::env::temp_dir().join("mlnoc_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b,comma"],
            &[vec!["1".into(), "say \"hi\"".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,\"b,comma\"\n1,\"say \"\"hi\"\"\"\n");
        std::fs::remove_file(path).ok();
    }
}
