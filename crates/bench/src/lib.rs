//! # bench — experiment harnesses behind every figure and table
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper
//! (see `DESIGN.md` for the index); this library holds the shared
//! machinery: latency/execution-time measurement loops, agent training
//! helpers for the "NN" policy, and plain-text table/series rendering.
//!
//! All binaries accept `--quick` (shrink workloads for smoke runs) and
//! `--seed <n>`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use apu_sim::{run_apu, ApuRunResult, EngineConfig, WorkloadSpec};
use noc_sim::{Arbiter, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};
use rl_arb::{AgentConfig, DqnAgent, FeatureSet, NnPolicyArbiter, SharedAgent, StateEncoder};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliArgs {
    /// Shrink workloads/epochs for a fast smoke run.
    pub quick: bool,
    /// Base seed for all stochastic components.
    pub seed: u64,
}

impl CliArgs {
    /// Parses `--quick` and `--seed <n>` from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn parse() -> Self {
        let mut args = CliArgs {
            quick: false,
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = v.parse().expect("--seed needs an integer");
                }
                other => panic!("unknown argument '{other}' (expected --quick or --seed <n>)"),
            }
        }
        args
    }

    /// Workload scale factor for APU runs.
    pub fn apu_scale(&self) -> f64 {
        if self.quick {
            0.08
        } else {
            0.5
        }
    }
}

/// Measures the steady-state average message latency of a policy on a
/// synthetic-traffic mesh: `warmup` cycles discarded, `measure` cycles
/// counted.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_latency(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> f64 {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let cfg = SimConfig::synthetic(width, height);
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().avg_latency()
}

/// Trains a DQN agent on a synthetic mesh and freezes it into the "NN"
/// policy (used by Fig. 5).
pub fn train_synthetic_nn(
    width: u16,
    height: u16,
    rate: f64,
    epochs: usize,
    cycles_per_epoch: u64,
    seed: u64,
) -> NnPolicyArbiter {
    let mut spec = rl_arb::TrainSpec::tuned_synthetic(width, rate, seed);
    spec.height = height;
    spec.epochs = epochs;
    spec.cycles_per_epoch = cycles_per_epoch;
    rl_arb::train_synthetic(&spec).agent.freeze()
}

/// Trains a DQN agent on the APU system by running the given workload
/// repeatedly ("we execute the same set of model files repeatedly until the
/// training converges", §4.2), and returns the trained agent (freeze it for
/// the "NN" policy, or inspect its weights for the Fig. 7 heatmap).
pub fn train_apu_agent(
    specs: Vec<WorkloadSpec>,
    repeats: usize,
    max_cycles_per_run: u64,
    seed: u64,
) -> DqnAgent {
    let cfg = SimConfig::apu(apu_sim::APU_MESH, apu_sim::APU_MESH);
    let encoder = StateEncoder::new(6, cfg.num_vnets, FeatureSet::full(), cfg.feature_bounds);
    let shared: SharedAgent = DqnAgent::new(encoder, AgentConfig::tuned_apu(seed)).into_shared();
    for rep in 0..repeats {
        let mut sim = apu_sim::make_apu_sim(
            specs.clone(),
            Box::new(shared.training_arbiter()),
            EngineConfig::default(),
            seed.wrapping_add(rep as u64),
        );
        sim.run_until_done(max_cycles_per_run);
    }
    shared.into_inner()
}

/// Runs one APU experiment (four workload copies) under a policy.
pub fn apu_run(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    seed: u64,
    max_cycles: u64,
) -> ApuRunResult {
    run_apu(specs, arbiter, EngineConfig::default(), seed, max_cycles)
}

/// Renders a plain-text table: header row, then rows of cells.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders aligned numeric series (e.g. training curves): one row per
/// label, one column per series; missing samples render as `-`.
pub fn render_series(title: &str, labels: &[String], series: &[(String, Vec<f64>)]) -> String {
    let mut headers = vec![title.to_string()];
    headers.extend(series.iter().map(|(name, _)| name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let mut row = vec![label.clone()];
            for (_, values) in series {
                row.push(
                    values
                        .get(i)
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    render_table(&header_refs, &rows)
}

/// The Fig. 9/10/11 policy line-up, in the paper's presentation order.
/// `nn` supplies the frozen trained network when the sweep includes the
/// "NN" column.
pub fn apu_policy_lineup(
    seed: u64,
    nn: Option<NnPolicyArbiter>,
) -> Vec<(String, Box<dyn Arbiter>)> {
    use noc_arbiters::{make_arbiter, PolicyKind};
    let mut v: Vec<(String, Box<dyn Arbiter>)> = vec![
        ("Round-robin".into(), make_arbiter(PolicyKind::RoundRobin, seed)),
        ("iSLIP".into(), make_arbiter(PolicyKind::Islip, seed)),
        ("FIFO".into(), make_arbiter(PolicyKind::Fifo, seed)),
        ("ProbDist".into(), make_arbiter(PolicyKind::ProbDist, seed)),
        ("RL-inspired".into(), make_arbiter(PolicyKind::RlApu, seed)),
    ];
    if let Some(nn) = nn {
        v.push(("NN".into(), Box::new(nn)));
    }
    v.push(("Global-age".into(), make_arbiter(PolicyKind::GlobalAge, seed)));
    v
}

/// Runs one benchmark's four-copies experiment under every policy in the
/// line-up and returns `(policy name, result)` pairs.
pub fn apu_sweep_one(
    specs: &[WorkloadSpec],
    seed: u64,
    max_cycles: u64,
    nn: Option<&NnPolicyArbiter>,
) -> Vec<(String, ApuRunResult)> {
    apu_policy_lineup(seed, nn.cloned())
        .into_iter()
        .map(|(name, arb)| {
            let r = apu_run(specs.to_vec(), arb, seed, max_cycles);
            (name, r)
        })
        .collect()
}

/// Multi-seed sweep: every policy runs the experiment once per seed;
/// returns `(policy name, mean avg-exec, mean tail-exec)` rows. Seed
/// averaging tames the run-to-run variance of the statistical workloads.
pub fn apu_sweep_seeds(
    specs: &[WorkloadSpec],
    seeds: &[u64],
    max_cycles: u64,
    nn: Option<&NnPolicyArbiter>,
) -> Vec<(String, f64, f64)> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut names: Vec<String> = Vec::new();
    let mut avg_sums: Vec<f64> = Vec::new();
    let mut tail_sums: Vec<f64> = Vec::new();
    for &seed in seeds {
        for (i, (name, r)) in apu_sweep_one(specs, seed, max_cycles, nn).into_iter().enumerate() {
            if names.len() <= i {
                names.push(name);
                avg_sums.push(0.0);
                tail_sums.push(0.0);
            }
            avg_sums[i] += r.avg_exec;
            tail_sums[i] += r.tail_exec as f64;
        }
    }
    let n = seeds.len() as f64;
    names
        .into_iter()
        .zip(avg_sums.into_iter().zip(tail_sums))
        .map(|(name, (a, t))| (name, a / n, t / n))
        .collect()
}

/// The seed list used by the figure binaries.
pub fn sweep_seeds(base: u64, quick: bool) -> Vec<u64> {
    if quick {
        vec![base, base + 1]
    } else {
        vec![base, base + 1, base + 2, base + 3]
    }
}

/// Formats a normalized row: each value divided by the reference (last)
/// policy's value.
pub fn normalized_row(label: &str, values: &[f64]) -> Vec<String> {
    let reference = *values.last().expect("non-empty row");
    let mut row = vec![label.to_string()];
    for v in values {
        row.push(format!("{:.3}", v / reference));
    }
    row
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Like [`synthetic_latency`] but returns the full statistics of the
/// measurement window.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_run(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> noc_sim::SimStats {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let cfg = SimConfig::synthetic(width, height);
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2.50".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn render_series_handles_ragged_data() {
        let out = render_series(
            "epoch",
            &["1".into(), "2".into()],
            &[("a".into(), vec![1.0]), ("b".into(), vec![2.0, 3.0])],
        );
        assert!(out.contains('-'), "missing placeholder for ragged series");
    }

    #[test]
    fn synthetic_latency_smoke() {
        let l = synthetic_latency(
            4,
            4,
            Pattern::UniformRandom,
            0.05,
            Box::new(noc_sim::arbiters::FifoArbiter::new()),
            200,
            500,
            1,
        );
        assert!(l > 0.0);
    }
}

/// Variant of [`synthetic_run`] with an explicit routing function.
#[allow(clippy::too_many_arguments)] // experiment parameters, not an API
pub fn synthetic_run_routed(
    width: u16,
    height: u16,
    pattern: Pattern,
    rate: f64,
    routing: noc_sim::RoutingKind,
    arbiter: Box<dyn Arbiter>,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> noc_sim::SimStats {
    let topo = Topology::uniform_mesh(width, height).expect("valid mesh");
    let mut cfg = SimConfig::synthetic(width, height);
    cfg.routing = routing;
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid sim");
    sim.run(warmup);
    sim.reset_stats();
    sim.run(measure);
    sim.stats().clone()
}

/// Writes a CSV file next to the printed table: header row plus data rows.
/// Cells are quoted only when needed. Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let path = path.as_ref().to_path_buf();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod csv_tests {
    use super::write_csv;

    #[test]
    fn csv_quotes_only_when_needed() {
        let dir = std::env::temp_dir().join("mlnoc_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b,comma"],
            &[vec!["1".into(), "say \"hi\"".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,\"b,comma\"\n1,\"say \"\"hi\"\"\"\n");
        std::fs::remove_file(path).ok();
    }
}
