//! Microbenchmark: DQN agent decision and training-tick cost (504-input
//! APU-scale network), plus raw MLP forward/backward.

use criterion::{criterion_group, criterion_main, Criterion};
use nn_mlp::Mlp;
use noc_sim::{
    Candidate, DestType, FeatureBounds, Features, MsgType, NetSnapshot, NodeId, OutputCtx,
    RouterId,
};
use rl_arb::{AgentConfig, DqnAgent, FeatureSet, StateEncoder};

fn apu_candidates() -> Vec<Candidate> {
    (0..6)
        .map(|i| Candidate {
            in_port: i % 6,
            vnet: i % 7,
            slot: (i % 6) * 7 + (i % 7),
            features: Features {
                payload_size: 1 + (i as u32 % 5),
                local_age: (i as u64 * 5) % 30,
                distance: 4,
                hop_count: i as u32 % 8,
                in_flight_from_src: 3,
                inter_arrival: 6,
                msg_type: MsgType::ALL[i % 3],
                dst_type: DestType::ALL[i % 3],
            },
            packet_id: i as u64,
            create_cycle: i as u64,
            arrival_cycle: 10 + i as u64,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        })
        .collect()
}

fn bench_agent(c: &mut Criterion) {
    let encoder = StateEncoder::new(6, 7, FeatureSet::full(), FeatureBounds::for_mesh(8, 8));
    let mut agent = DqnAgent::new(encoder, AgentConfig::paper_apu(1));
    let cands = apu_candidates();
    let net = NetSnapshot::default();
    let mut cycle = 0u64;

    c.bench_function("dqn_decide_504", |b| {
        b.iter(|| {
            cycle += 1;
            let ctx = OutputCtx {
                router: RouterId(cycle as usize % 64),
                out_port: (cycle % 6) as usize,
                cycle,
                num_ports: 6,
                num_vnets: 7,
                candidates: &cands,
                net: &net,
            };
            agent.decide(&ctx)
        })
    });

    c.bench_function("dqn_train_tick_batch2", |b| b.iter(|| agent.train_tick()));

    let mlp = Mlp::paper_agent(504, 42, 42, 0);
    let input = vec![0.25_f64; 504];
    c.bench_function("mlp_forward_504x42x42", |b| b.iter(|| mlp.forward(&input)));
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);
