//! Microbenchmark of the SoA router hot path: one `step()` on a warmed-up
//! 8×8 uniform-random mesh at rate 0.20 (the Fig. 5 operating point),
//! under the policies that stress the two pass-1 shapes — global-age
//! (`wants_features() == false`, lite candidates from the hot mirrors) and
//! the frozen NN policy (full Table-2 candidates plus per-router batched
//! inference). The structure-of-arrays state (`heads`/`hots`/`auxs`,
//! credit books, occupancy bitmaps) keeps pass 1 on one cache line per
//! occupied VC; in steady state this path performs no heap allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use nn_mlp::Mlp;
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{
    Arbiter, FeatureBounds, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology,
};
use rl_arb::{FeatureSet, InferenceMode, NnPolicyArbiter, StateEncoder};

fn warmed_sim(arbiter: Box<dyn Arbiter>) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(8, 8).unwrap();
    let cfg = SimConfig::synthetic(8, 8);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.20, cfg.num_vnets, 42);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).unwrap();
    sim.run(2_000); // reach steady-state occupancy before measuring
    sim
}

fn nn_policy() -> NnPolicyArbiter {
    let cfg = SimConfig::synthetic(8, 8);
    let encoder = StateEncoder::new(
        5,
        cfg.num_vnets,
        FeatureSet::synthetic(),
        FeatureBounds::for_mesh(8, 8),
    );
    let net = Mlp::paper_agent(encoder.state_width(), 15, encoder.num_slots(), 42);
    NnPolicyArbiter::new(net, encoder)
}

fn sim_step_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_soa_8x8_rate020");
    let mut sim = warmed_sim(make_arbiter(PolicyKind::GlobalAge, 42));
    group.bench_function("global_age_lite", |b| b.iter(|| sim.step()));
    let mut sim = warmed_sim(Box::new(nn_policy()));
    group.bench_function("nn_f32_batched", |b| b.iter(|| sim.step()));
    let mut sim = warmed_sim(Box::new(nn_policy().with_batched(false)));
    group.bench_function("nn_f32_scalar", |b| b.iter(|| sim.step()));
    let mut sim = warmed_sim(Box::new(nn_policy().with_inference(InferenceMode::Int8)));
    group.bench_function("nn_int8_batched", |b| b.iter(|| sim.step()));
    group.finish();
}

criterion_group!(benches, sim_step_soa);
criterion_main!(benches);
