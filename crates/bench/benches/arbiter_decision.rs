//! Microbenchmark: per-decision cost of each arbitration policy on a
//! realistic contended candidate set (the software analogue of Table 3's
//! latency column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId, OutputCtx, RouterId};

fn candidates(n: usize) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            in_port: i % 6,
            vnet: i % 7,
            slot: (i % 6) * 7 + (i % 7),
            features: Features {
                payload_size: if i % 3 == 0 { 5 } else { 1 },
                local_age: (i as u64 * 7) % 40,
                distance: (i as u32 % 14) + 1,
                hop_count: i as u32 % 14,
                in_flight_from_src: i as u32 % 20,
                inter_arrival: (i as u64 * 3) % 30,
                msg_type: MsgType::ALL[i % 3],
                dst_type: DestType::ALL[i % 3],
            },
            packet_id: i as u64,
            create_cycle: (i as u64 * 13) % 500,
            arrival_cycle: 500 + i as u64,
            src: NodeId(i % 64),
            dst: NodeId((i + 7) % 64),
            port_degraded: false,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let cands = candidates(8);
    let net = NetSnapshot::default();
    let mut group = c.benchmark_group("arbiter_decision");
    for kind in [
        PolicyKind::RoundRobin,
        PolicyKind::Fifo,
        PolicyKind::ProbDist,
        PolicyKind::GlobalAge,
        PolicyKind::RlApu,
        PolicyKind::Algorithm2,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut arb = make_arbiter(kind, 42);
            let mut cycle = 0u64;
            b.iter(|| {
                cycle += 1;
                let ctx = OutputCtx {
                    router: RouterId(5),
                    out_port: 2,
                    cycle,
                    num_ports: 6,
                    num_vnets: 7,
                    candidates: &cands,
                    net: &net,
                };
                arb.select(&ctx)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
