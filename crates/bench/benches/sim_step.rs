//! Microbenchmark of the simulator's per-cycle hot path after the
//! de-allocation work: one `step()` on a warmed-up 8×8 uniform-random
//! mesh at rate 0.20 (the Fig. 5 operating point). In steady state this
//! path performs no heap allocation — arrivals, injections, arbitration
//! candidates and tx-end bookkeeping all live in reusable scratch
//! buffers and calendar-queue slots.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};

fn warmed_sim(kind: PolicyKind) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(8, 8).unwrap();
    let cfg = SimConfig::synthetic(8, 8);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.20, cfg.num_vnets, 42);
    let mut sim = Simulator::new(topo, cfg, make_arbiter(kind, 42), traffic).unwrap();
    sim.run(2_000); // reach steady-state occupancy before measuring
    sim
}

fn sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_8x8_rate020");
    let mut sim = warmed_sim(PolicyKind::GlobalAge);
    group.bench_function("global_age", |b| b.iter(|| sim.step()));
    let mut sim = warmed_sim(PolicyKind::RlSynth8x8);
    group.bench_function("rl_inspired", |b| b.iter(|| sim.step()));
    group.finish();
}

criterion_group!(benches, sim_step);
criterion_main!(benches);
