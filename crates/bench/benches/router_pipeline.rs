//! Microbenchmark: simulator cycles per second on a loaded 8×8 mesh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_pipeline");
    group.sample_size(20);
    for kind in [PolicyKind::RoundRobin, PolicyKind::GlobalAge, PolicyKind::RlApu] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let topo = Topology::uniform_mesh(8, 8).unwrap();
            let cfg = SimConfig::synthetic(8, 8);
            let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.20, cfg.num_vnets, 1);
            let mut sim = Simulator::new(topo, cfg, make_arbiter(kind, 1), traffic).unwrap();
            sim.run(2_000); // warm the network
            b.iter(|| sim.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
