//! Macrobenchmark: full APU protocol simulation throughput (cycles/sec
//! with the closed-loop coherence engine active).

use apu_sim::{make_apu_sim, EngineConfig, PhaseSpec, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use noc_arbiters::{make_arbiter, PolicyKind};

fn bench_apu(c: &mut Criterion) {
    let mut group = c.benchmark_group("apu_simulation");
    group.sample_size(10);
    group.bench_function("apu_step_rl_inspired", |b| {
        let mut phase = PhaseSpec::balanced();
        phase.ops_per_cu = u64::MAX / 2; // endless supply: bench steady state
        phase.issue_prob = 0.4;
        let spec = WorkloadSpec::single_phase("bench", phase);
        let mut sim = make_apu_sim(
            vec![spec; 4],
            make_arbiter(PolicyKind::RlApu, 1),
            EngineConfig::default(),
            1,
        );
        sim.run(1_000); // reach steady state
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(benches, bench_apu);
criterion_main!(benches);
