//! Microbenchmark of the inference kernels behind the NN arbiter: scalar
//! vs batched forward passes of the paper's two network shapes (synthetic
//! 60→15→15 and APU 504→42→42), in f64 and through the INT8 fixed-point
//! datapath. The batch dimension models one router's contended output
//! ports in one cycle (2–5 on the synthetic mesh).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn_mlp::{Mlp, QuantScratch, QuantizedMlp, Scratch};

fn inputs_for(net: &Mlp, rows: usize) -> Vec<f64> {
    (0..rows * net.input_size())
        .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 1000.0)
        .collect()
}

fn bench_shape(c: &mut Criterion, label: &str, net: &Mlp) {
    let qnet = QuantizedMlp::from_mlp(net);
    let mut group = c.benchmark_group(format!("inference_batched_{label}"));
    for &rows in &[1_usize, 4, 8] {
        let inputs = inputs_for(net, rows);
        let w = net.input_size();
        let mut scratch = Scratch::new();
        group.bench_with_input(BenchmarkId::new("f32_scalar", rows), &rows, |b, &rows| {
            b.iter(|| {
                let mut sink = 0.0;
                for r in 0..rows {
                    let q = net.forward_into(&inputs[r * w..(r + 1) * w], &mut scratch);
                    sink += q[0];
                }
                sink
            })
        });
        let mut batch = Scratch::new();
        group.bench_with_input(BenchmarkId::new("f32_batched", rows), &rows, |b, &rows| {
            b.iter(|| net.forward_batch_into(&inputs, rows, &mut batch)[0])
        });
        let mut qscratch = QuantScratch::new();
        group.bench_with_input(BenchmarkId::new("int8_scalar", rows), &rows, |b, &rows| {
            b.iter(|| {
                let mut sink = 0.0;
                for r in 0..rows {
                    let q = qnet.forward_into(&inputs[r * w..(r + 1) * w], &mut qscratch);
                    sink += q[0];
                }
                sink
            })
        });
        let mut qbatch = QuantScratch::new();
        group.bench_with_input(BenchmarkId::new("int8_batched", rows), &rows, |b, &rows| {
            b.iter(|| qnet.forward_batch_into(&inputs, rows, &mut qbatch)[0])
        });
    }
    group.finish();
}

fn inference_batched(c: &mut Criterion) {
    bench_shape(c, "synthetic_60_15_15", &Mlp::paper_agent(60, 15, 15, 42));
    bench_shape(c, "apu_504_42_42", &Mlp::paper_agent(504, 42, 42, 42));
}

criterion_group!(benches, inference_batched);
criterion_main!(benches);
