//! Working with on-disk artifacts: SynFull-style workload model files and
//! saved agent networks.
//!
//! Run with: `cargo run --release --example model_files`

use ml_noc::apu_sim::{run_apu, EngineConfig, NUM_QUADRANTS};
use ml_noc::apu_workloads::{from_model_file, to_model_file, Benchmark};
use ml_noc::nn_mlp::Mlp;
use ml_noc::noc_arbiters::{make_arbiter, PolicyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("ml-noc-example");
    std::fs::create_dir_all(&dir)?;

    // --- 1. Export a built-in benchmark as an editable model file -------
    let bfs = Benchmark::Bfs.spec_scaled(0.2);
    let path = dir.join("bfs.workload");
    std::fs::write(&path, to_model_file(&bfs))?;
    println!("wrote {}:", path.display());
    println!("{}", to_model_file(&bfs));

    // --- 2. Define a custom workload in the same format -----------------
    let custom_text = "\
workload pointer-chase
kernel_invalidate true
flow sequence
phase ops_per_cu=20 issue_prob=0.15 window=2 store_frac=0.05 l2_hit_rate=0.2 cpu_ops=10
";
    let custom = from_model_file(custom_text)?;
    println!(
        "parsed custom workload '{}' with {} phase(s)",
        custom.name,
        custom.phases.len()
    );

    // --- 3. Run it on the APU chip ---------------------------------------
    let result = run_apu(
        vec![custom; NUM_QUADRANTS],
        make_arbiter(PolicyKind::RlApu, 7),
        EngineConfig::default(),
        7,
        2_000_000,
    );
    println!(
        "pointer-chase: avg execution {:.0} cycles, tail {} (completed: {})",
        result.avg_exec, result.tail_exec, result.completed
    );

    // --- 4. Save and reload a network ------------------------------------
    let net = Mlp::paper_agent(60, 15, 15, 42);
    let model_path = dir.join("agent.mlp");
    net.save(&model_path)?;
    let reloaded = Mlp::load(&model_path)?;
    assert_eq!(net, reloaded);
    println!(
        "saved + reloaded a {}-parameter network at {}",
        net.num_parameters(),
        model_path.display()
    );
    Ok(())
}
