//! Quickstart: simulate a 4×4 mesh under uniform-random traffic and compare
//! two arbitration policies.
//!
//! Run with: `cargo run --release --example quickstart`

use ml_noc::noc_arbiters::{GlobalAgeArbiter, RoundRobinArbiter};
use ml_noc::noc_sim::{format_report, Arbiter, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};

fn measure(arbiter: Box<dyn Arbiter>, name: &str) {
    // A 4×4 mesh with one core per router, three virtual channels per port.
    let topo = Topology::uniform_mesh(4, 4).expect("4x4 mesh is valid");
    let cfg = SimConfig::synthetic(4, 4);
    // Every node injects a packet with 40% probability per cycle — heavy
    // enough that arbitration decisions matter.
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.40, cfg.num_vnets, 42);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid configuration");

    // Warm up, then measure.
    sim.run(3_000);
    sim.reset_stats();
    sim.run(20_000);

    println!("--- {name} ---");
    println!("{}", format_report(sim.stats()));
}

fn main() {
    println!("4x4 mesh, uniform random traffic @ 0.40 packets/node/cycle:\n");
    measure(Box::new(RoundRobinArbiter::new()), "round-robin");
    measure(Box::new(GlobalAgeArbiter::new()), "global-age");
    println!("\nGlobal-age arbitration trims the latency tail (p99/max): that");
    println!("equality-of-service gap is what the paper's RL agent learns to close");
    println!("with implementable features. See examples/train_and_distill.rs.");
}
