//! Implementing your own arbitration policy against the public API.
//!
//! Two routes are shown:
//! * a [`PriorityPolicy`] — you provide a priority function; the
//!   `MaxPriorityArbiter` adapter runs it through the same select-max
//!   structure as the paper's Fig. 8 hardware, and
//! * a full [`Arbiter`] — you take over the whole decision, including
//!   matching-style policies that need the router-wide view.
//!
//! Run with: `cargo run --release --example custom_arbiter`

use ml_noc::noc_arbiters::{GlobalAgeArbiter, MaxPriorityArbiter, PriorityPolicy};
use ml_noc::noc_sim::{
    Arbiter, Candidate, MsgType, OutputCtx, Pattern, SimConfig, Simulator, SyntheticTraffic,
    Topology,
};

/// A "shortest-job-first" flavored policy: prefer short control messages,
/// break ties by local age. (Not a good idea for fairness — run it and see.)
#[derive(Debug)]
struct ShortestFirst;

impl PriorityPolicy for ShortestFirst {
    fn name(&self) -> String {
        "shortest-first".into()
    }

    fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        let shortness = 8 - c.features.payload_size.min(7);
        let age = c.features.local_age.min(31) as u32;
        (shortness << 5) | age
    }
}

/// A full `Arbiter` impl: alternate between oldest-message and
/// response-message preference each cycle.
#[derive(Debug)]
struct AlternatingArbiter;

impl Arbiter for AlternatingArbiter {
    fn name(&self) -> String {
        "alternating".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        if ctx.cycle.is_multiple_of(2) {
            // Even cycles: oldest global age (the oracle helper).
            Some(ctx.oldest_global_index())
        } else {
            // Odd cycles: first response-class message, else candidate 0.
            Some(
                ctx.candidates
                    .iter()
                    .position(|c| c.features.msg_type == MsgType::Response)
                    .unwrap_or(0),
            )
        }
    }
}

fn measure(arbiter: Box<dyn Arbiter>) {
    let name = arbiter.name();
    let topo = Topology::uniform_mesh(4, 4).expect("valid mesh");
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.40, cfg.num_vnets, 9)
        .with_data_packets(0.3, 5);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid configuration");
    sim.run(2_000);
    sim.reset_stats();
    sim.run(15_000);
    let s = sim.stats();
    println!(
        "{name:>15}: avg {:6.1} | p99 {:5} | max {:6} | Jain fairness {:.3}",
        s.avg_latency(),
        s.latency_percentile(99.0),
        s.max_latency(),
        s.jain_fairness()
    );
}

fn main() {
    println!("custom policies on a congested 4x4 mesh:\n");
    measure(Box::new(MaxPriorityArbiter::new(ShortestFirst)));
    measure(Box::new(AlternatingArbiter));
    measure(Box::new(GlobalAgeArbiter::new()));
}
