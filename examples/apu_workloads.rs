//! Run a GPU benchmark on the heterogeneous APU chip (64 CUs + 4 CPUs on an
//! 8×8 mesh with a 7-class coherence protocol) under three arbitration
//! policies, and report program execution times — the paper's §4/§5
//! experiment in miniature.
//!
//! Run with: `cargo run --release --example apu_workloads [benchmark]`
//! where `benchmark` is one of: dct histogram matrixmul reduction spmv bfs
//! hotspot comd minife (default: bfs).

use ml_noc::apu_sim::{run_apu, EngineConfig, NUM_QUADRANTS};
use ml_noc::apu_workloads::Benchmark;
use ml_noc::noc_arbiters::{make_arbiter, PolicyKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_string());
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}', using bfs");
            Benchmark::Bfs
        });

    println!(
        "running 4 copies of {bench} (one per quadrant, {} class: {:?})\n",
        bench.name(),
        bench.injection_class()
    );

    let specs = vec![bench.spec_scaled(0.5); NUM_QUADRANTS];
    for kind in [PolicyKind::RoundRobin, PolicyKind::RlApu, PolicyKind::GlobalAge] {
        let result = run_apu(
            specs.clone(),
            make_arbiter(kind, 42),
            EngineConfig::default(),
            42,
            4_000_000,
        );
        println!("{:>12}:", kind.as_str());
        println!("  per-quadrant completion: {:?} cycles", result.exec_times);
        println!(
            "  avg {:.0} | tail {} | network msgs {} | avg msg latency {:.1}",
            result.avg_exec,
            result.tail_exec,
            result.stats.delivered,
            result.stats.avg_latency()
        );
    }
    println!("\nExecution time differences come from dependency-limited progress:");
    println!("every CU stalls when its outstanding-request window fills, so message");
    println!("tail latency under contention translates directly into runtime.");
}
