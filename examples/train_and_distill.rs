//! The paper's full methodology in one runnable example:
//!
//! 1. train a deep-Q-learning agent to arbitrate a 4×4 mesh (reward: did it
//!    grant the globally oldest message?),
//! 2. inspect the trained network's first-layer weights as a Fig.-4-style
//!    heatmap to see *which features the agent relies on*, and
//! 3. compare the hand-distilled "RL-inspired" policy built from those
//!    observations against FIFO and the global-age oracle.
//!
//! Run with: `cargo run --release --example train_and_distill`

use ml_noc::noc_arbiters::{make_arbiter, PolicyKind};
use ml_noc::noc_sim::{Arbiter, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};
use ml_noc::rl_arb::{train_synthetic, weight_heatmap, TrainSpec};

fn evaluate(arbiter: Box<dyn Arbiter>, name: &str, rate: f64) {
    let topo = Topology::uniform_mesh(4, 4).expect("valid mesh");
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, rate, cfg.num_vnets, 7);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).expect("valid configuration");
    sim.run(3_000);
    sim.reset_stats();
    sim.run(20_000);
    let s = sim.stats();
    println!(
        "{name:>12}: avg {:6.1} | p99 {:5} | max {:5}",
        s.avg_latency(),
        s.latency_percentile(99.0),
        s.max_latency()
    );
}

fn main() {
    // --- 1. Train ----------------------------------------------------
    let rate = 0.40;
    let mut spec = TrainSpec::tuned_synthetic(4, rate, 42);
    spec.epochs = 30; // keep the example snappy; the Fig. 4 binary trains longer
    println!("training DQN agent on a 4x4 mesh ({} epochs)...", spec.epochs);
    let outcome = train_synthetic(&spec);
    println!(
        "  training curve (avg latency): first epoch {:.1} -> last epoch {:.1}",
        outcome.curve.first().unwrap(),
        outcome.curve.last().unwrap()
    );
    println!(
        "  {} arbitration decisions, {:.1}% matched the global-age oracle\n",
        outcome.agent.decisions(),
        100.0 * outcome.agent.cumulative_reward() / outcome.agent.decisions() as f64
    );

    // --- 2. Interpret -------------------------------------------------
    let hm = weight_heatmap(outcome.agent.network(), outcome.agent.encoder());
    println!("first-layer |weight| heatmap (rows: features, cols: buffers):");
    println!("{}", hm.to_ascii());
    println!("feature ranking (mean |w|):");
    for (row, mean) in hm.ranked_rows() {
        println!("  {:>12}: {:.4}", hm.row_labels[row], mean);
    }

    // --- 3. Distill & compare -----------------------------------------
    println!("\ncomparing policies at injection rate {rate}:");
    evaluate(make_arbiter(PolicyKind::Fifo, 1), "FIFO", rate);
    evaluate(make_arbiter(PolicyKind::RlSynth4x4, 1), "RL-inspired", rate);
    evaluate(Box::new(outcome.agent.freeze()), "NN (agent)", rate);
    evaluate(make_arbiter(PolicyKind::GlobalAge, 1), "global-age", rate);
    println!("\nThe RL-inspired policy — two saturating counters and an adder —");
    println!("captures most of the oracle's tail-latency benefit in hardware");
    println!("that fits a single cycle (see `cargo run -p bench --bin table3_synthesis`).");
}
