#!/bin/bash
# Regenerates every figure/table of the paper. Output lands in results/.
set -u
cd "$(dirname "$0")"
BINS="table3_synthesis starvation_check fig04_heatmap fig05_synthetic fig12_rewards fig13_features ablation_defeature ablation_hparams ablation_multi_agent ablation_routing extended_policies load_sweep fig07_apu_heatmap fig09_avg_exec fig10_tail_exec fig11_mixed"
for b in $BINS; do
  echo "=== $b ==="
  ./target/release/$b "$@" > results/$b.txt 2> results/$b.log && echo "ok: results/$b.txt" || echo "FAILED: see results/$b.log"
done
