#!/bin/bash
# Regenerates every figure/table of the paper through the unified `repro`
# driver. Text reports land in results/<name>.txt, structured RunRecord
# JSON (and CSV where applicable) alongside them, training/progress
# chatter in results/<name>.log.
#
# The driver keeps output basenames equal to the historical binary names,
# so regenerated artifacts land on the checked-in results/ paths.
set -u
cd "$(dirname "$0")"
REPRO=./target/release/repro
FIGURES="table3 starvation_check fig04 fig05 fig12 fig13 ablation_defeature ablation_hparams ablation_multi_agent ablation_routing extended_policies load_sweep fig07 fig09 fig10 fig11"
for f in $FIGURES; do
  case $f in
    fig04) out=fig04_heatmap ;;
    fig05) out=fig05_synthetic ;;
    fig07) out=fig07_apu_heatmap ;;
    fig09) out=fig09_avg_exec ;;
    fig10) out=fig10_tail_exec ;;
    fig11) out=fig11_mixed ;;
    fig12) out=fig12_rewards ;;
    fig13) out=fig13_features ;;
    table3) out=table3_synthesis ;;
    *) out=$f ;;
  esac
  echo "=== $f ==="
  $REPRO "$f" --out-dir results "$@" > results/$out.txt 2> results/$out.log && echo "ok: results/$out.txt" || echo "FAILED: see results/$out.log"
done
